package traceio

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"testing"

	"ocelotl/internal/trace"
)

func TestEventsIteratesWholeTrace(t *testing.T) {
	tr := sampleTrace()
	path := filepath.Join(t.TempDir(), "t.bin")
	if err := WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var got []trace.Event
	for ev, err := range Events(r) {
		if err != nil {
			t.Fatalf("iterator error: %v", err)
		}
		got = append(got, ev)
	}
	if len(got) != tr.NumEvents() {
		t.Fatalf("iterated %d events, want %d", len(got), tr.NumEvents())
	}
	for i := range got {
		if got[i] != tr.Events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], tr.Events[i])
		}
	}
}

func TestEventsEarlyBreak(t *testing.T) {
	tr := sampleTrace()
	path := filepath.Join(t.TempDir(), "t.bin")
	if err := WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	n := 0
	for _, err := range Events(r) {
		if err != nil {
			t.Fatalf("iterator error: %v", err)
		}
		n++
		if n == 2 {
			break
		}
	}
	if n != 2 {
		t.Fatalf("broke after %d events, want 2", n)
	}
	// The source stays usable: the break did not drain or close it.
	var ev trace.Event
	if err := r.Next(&ev); err != nil {
		t.Fatalf("Next after break: %v", err)
	}
}

// TestEventsPreservesCorruptOffset pins the satellite contract: a decode
// failure surfaces through the iterator unwrapped, so the CorruptError's
// byte offset reaches the consumer intact.
func TestEventsPreservesCorruptOffset(t *testing.T) {
	valid := buildValid(t, FormatBinary)
	data := valid[:len(valid)-5] // sever the final 18-byte record
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	n := 0
	for _, err := range Events(r) {
		if err != nil {
			lastErr = err
			continue
		}
		n++
	}
	if lastErr == nil {
		t.Fatal("truncated stream iterated to a clean end")
	}
	var ce *CorruptError
	if !errors.As(lastErr, &ce) {
		t.Fatalf("iterator error %v (%T) is not a CorruptError", lastErr, lastErr)
	}
	if ce.Offset < int64(len(data)-18) || ce.Offset > int64(len(data)) {
		t.Fatalf("CorruptError.Offset = %d not within the severed record [%d,%d]", ce.Offset, len(data)-18, len(data))
	}
	if n == 0 {
		t.Fatal("no events decoded before the severed record")
	}
}

func TestEventsEOFOnly(t *testing.T) {
	// An already-drained source yields nothing, not an io.EOF pair.
	tr := sampleTrace()
	path := filepath.Join(t.TempDir(), "t.bin")
	if err := WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var ev trace.Event
	for r.Next(&ev) == nil {
	}
	for _, err := range Events(r) {
		if err == io.EOF {
			t.Fatal("iterator yielded io.EOF")
		}
		t.Fatalf("drained source yielded (%v)", err)
	}
}
