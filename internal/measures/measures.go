// Package measures implements the information-theoretic quantities of the
// paper (§III.C): the Kullback-Leibler information loss (Eq. 2), the
// Shannon-entropy data-reduction gain (Eq. 3), the parametrized Information
// Criterion pIC (Eq. 4), and the aggregated state proportions (Eq. 1).
//
// All logarithms are base 2; the usual convention 0·log₂0 = 0 applies.
// The functions here operate on precomputed sums so that every aggregation
// algorithm (spatial, temporal, spatiotemporal, product) shares a single
// implementation of the equations.
package measures

import "math"

// PLogP returns p·log₂(p) with the convention 0·log₂0 = 0. It is the
// elementary term of both the gain and the loss.
func PLogP(p float64) float64 {
	if p <= 0 {
		return 0
	}
	return p * math.Log2(p)
}

// AreaSums collects, for one state x over one spatiotemporal area
// (S_k, T_(i,j)), the sums needed by Eqs. 1–3 (paper §III.E "Data Input"):
//
//	SumD       = Σ_(s,t) d_x(s,t)        — time spent in x
//	SumRho     = Σ_(s,t) ρ_x(s,t)        — sum of microscopic proportions
//	SumRhoLogRho = Σ_(s,t) ρ_x·log₂ρ_x   — "Shannon information" of those
//
// together with the area's geometry: Size = |S_k| and Duration =
// Σ_(t∈T(i,j)) d(t).
type AreaSums struct {
	SumD         float64
	SumRho       float64
	SumRhoLogRho float64
	Size         int
	Duration     float64
}

// AggRho returns the aggregated proportion ρ_x(S_k, T_(i,j)) of Eq. 1:
// the per-resource time-weighted ratios averaged over the resources. With
// regular slices this equals the plain mean of the microscopic ρ values.
func (a AreaSums) AggRho() float64 {
	if a.Size == 0 || a.Duration <= 0 {
		return 0
	}
	return a.SumD / (float64(a.Size) * a.Duration)
}

// Loss returns the Kullback-Leibler information loss of Eq. 2 for this
// state and area:
//
//	loss_x = Σ_(s,t) ρ_x(s,t) · log₂( ρ_x(s,t) / ρ_x(S_k,T_(i,j)) )
//
// Terms with ρ_x(s,t) = 0 vanish; if the aggregated proportion is 0 every
// microscopic value is 0 too and the loss is 0.
func (a AreaSums) Loss() float64 {
	agg := a.AggRho()
	if agg <= 0 {
		return 0
	}
	return a.SumRhoLogRho - a.SumRho*math.Log2(agg)
}

// Gain returns the Shannon-entropy data reduction of Eq. 3:
//
//	gain_x = ρ_x(S_k,T_(i,j))·log₂ρ_x(S_k,T_(i,j)) − Σ_(s,t) ρ_x·log₂ρ_x
func (a AreaSums) Gain() float64 {
	return PLogP(a.AggRho()) - a.SumRhoLogRho
}

// PIC returns the parametrized Information Criterion of Eq. 4 for the given
// gain/loss trade-off ratio p ∈ [0,1]:
//
//	pIC_x = p·gain_x − (1−p)·loss_x
func (a AreaSums) PIC(p float64) float64 {
	return p*a.Gain() - (1-p)*a.Loss()
}

// PIC combines a gain and a loss with ratio p (Eq. 4). The criterion is
// additive over the parts of a partition and over the states.
func PIC(p, gain, loss float64) float64 { return p*gain - (1-p)*loss }

// GainLoss accumulates the (gain, loss) pair of one area over all states:
// given per-state AreaSums it returns Σ_x gain_x and Σ_x loss_x.
func GainLoss(perState []AreaSums) (gain, loss float64) {
	for _, a := range perState {
		gain += a.Gain()
		loss += a.Loss()
	}
	return gain, loss
}

// ImproveEps is the relative tolerance used by every aggregation algorithm
// when comparing partition alternatives. The paper's Algorithm 1 requires a
// *strict* improvement to cut (ties favor aggregation); in floating point,
// sums over many microscopic areas carry rounding noise of order
// 1e-16·scale which would otherwise break ties arbitrarily (e.g. splitting
// perfectly homogeneous data at p = 0). Genuine criterion improvements are
// far above this threshold.
const ImproveEps = 1e-12

// Improves reports whether candidate strictly beats best beyond rounding
// noise. An infinite best (the DP initialization) is beaten by anything
// finite.
func Improves(candidate, best float64) bool {
	if math.IsInf(best, -1) {
		return !math.IsInf(candidate, -1)
	}
	return candidate > best+ImproveEps*(1+math.Abs(best))
}

// Entropy returns the Shannon entropy −Σ p_i log₂ p_i of a distribution.
// Used by analyses and tests; not part of the optimization hot path.
func Entropy(p []float64) float64 {
	h := 0.0
	for _, v := range p {
		h -= PLogP(v)
	}
	return h
}

// KLDivergence returns Σ p_i log₂(p_i/q_i) for distributions p, q (0 where
// p_i = 0; +Inf if some p_i > 0 has q_i = 0). Used by tests to cross-check
// the loss computation from first principles.
func KLDivergence(p, q []float64) float64 {
	d := 0.0
	for i, pi := range p {
		if pi <= 0 {
			continue
		}
		if q[i] <= 0 {
			return math.Inf(1)
		}
		d += pi * math.Log2(pi/q[i])
	}
	return d
}

// Mode returns the index of the largest value (the state mode of §IV) and
// its share α = max/Σ; index -1 and α = 0 for an all-zero vector. Ties go
// to the lowest index, which keeps renderings deterministic.
func Mode(values []float64) (idx int, alpha float64) {
	idx = -1
	var max, sum float64
	for i, v := range values {
		sum += v
		if idx == -1 || v > max {
			idx, max = i, v
		}
	}
	if sum <= 0 || max <= 0 {
		return -1, 0
	}
	return idx, max / sum
}
