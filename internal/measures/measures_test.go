package measures

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPLogP(t *testing.T) {
	if got := PLogP(0); got != 0 {
		t.Errorf("PLogP(0) = %g, want 0", got)
	}
	if got := PLogP(-0.5); got != 0 {
		t.Errorf("PLogP(-0.5) = %g, want 0 (clamped)", got)
	}
	if got := PLogP(1); got != 0 {
		t.Errorf("PLogP(1) = %g, want 0", got)
	}
	if got := PLogP(0.5); math.Abs(got+0.5) > 1e-12 {
		t.Errorf("PLogP(0.5) = %g, want -0.5", got)
	}
	if got := PLogP(2); math.Abs(got-2) > 1e-12 {
		t.Errorf("PLogP(2) = %g, want 2", got)
	}
}

// area builds AreaSums from explicit microscopic proportions with slice
// duration 1 and the given resource count (the values slice is
// [resource][slice] flattened, so Duration = len(values)/size).
func area(values []float64, size int) AreaSums {
	a := AreaSums{Size: size, Duration: float64(len(values) / size)}
	for _, v := range values {
		a.SumD += v // d(t)=1 so d_x = ρ_x
		a.SumRho += v
		a.SumRhoLogRho += PLogP(v)
	}
	return a
}

func TestAggRhoIsMeanOnRegularSlices(t *testing.T) {
	a := area([]float64{0.2, 0.4, 0.6, 0.8}, 2)
	if got, want := a.AggRho(), 0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("AggRho = %g, want %g", got, want)
	}
}

func TestAggRhoEmptyArea(t *testing.T) {
	var a AreaSums
	if got := a.AggRho(); got != 0 {
		t.Errorf("AggRho of empty area = %g, want 0", got)
	}
}

func TestHomogeneousAreaHasZeroLoss(t *testing.T) {
	a := area([]float64{0.3, 0.3, 0.3, 0.3, 0.3, 0.3}, 3)
	if l := a.Loss(); math.Abs(l) > 1e-12 {
		t.Errorf("homogeneous loss = %g, want 0", l)
	}
	// And the gain equals -(n-1)·plogp(ρ) ≥ 0.
	want := -5 * PLogP(0.3)
	if g := a.Gain(); math.Abs(g-want) > 1e-12 {
		t.Errorf("homogeneous gain = %g, want %g", g, want)
	}
}

func TestAllZeroAreaIsFree(t *testing.T) {
	a := area([]float64{0, 0, 0, 0}, 2)
	if a.Loss() != 0 || a.Gain() != 0 {
		t.Errorf("all-zero area: gain=%g loss=%g, want 0, 0", a.Gain(), a.Loss())
	}
}

func TestSingletonAreaIsFree(t *testing.T) {
	a := area([]float64{0.42}, 1)
	if math.Abs(a.Loss()) > 1e-12 || math.Abs(a.Gain()) > 1e-12 {
		t.Errorf("singleton area: gain=%g loss=%g, want 0, 0", a.Gain(), a.Loss())
	}
}

// TestLossNonNegativeProperty: on regular slices the aggregated proportion
// is the mean of the microscopic ones, so the KL loss is ≥ 0 (log-sum
// inequality).
func TestLossNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(6)
		vals := make([]float64, n*m)
		for i := range vals {
			vals[i] = rng.Float64()
		}
		return area(vals, n).Loss() >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLossMatchesKLProperty: the Eq. 2 loss equals Σρ·KL(ρ̂ ‖ uniform-agg)
// computed from first principles.
func TestLossMatchesFirstPrinciples(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(5)
		vals := make([]float64, n*m)
		for i := range vals {
			vals[i] = rng.Float64()
		}
		a := area(vals, n)
		agg := a.AggRho()
		var want float64
		for _, v := range vals {
			if v > 0 && agg > 0 {
				want += v * math.Log2(v/agg)
			}
		}
		return math.Abs(a.Loss()-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPICEndpoints(t *testing.T) {
	a := area([]float64{0.1, 0.9, 0.5, 0.5}, 2)
	if got, want := a.PIC(0), -a.Loss(); math.Abs(got-want) > 1e-12 {
		t.Errorf("PIC(0) = %g, want -loss = %g", got, want)
	}
	if got, want := a.PIC(1), a.Gain(); math.Abs(got-want) > 1e-12 {
		t.Errorf("PIC(1) = %g, want gain = %g", got, want)
	}
	if got, want := PIC(0.3, 2, 1), 0.3*2-0.7*1; math.Abs(got-want) > 1e-12 {
		t.Errorf("PIC(0.3,2,1) = %g, want %g", got, want)
	}
}

func TestGainLossAccumulates(t *testing.T) {
	a := area([]float64{0.1, 0.9}, 1)
	b := area([]float64{0.5, 0.5}, 1)
	g, l := GainLoss([]AreaSums{a, b})
	if math.Abs(g-(a.Gain()+b.Gain())) > 1e-12 || math.Abs(l-(a.Loss()+b.Loss())) > 1e-12 {
		t.Errorf("GainLoss = (%g,%g)", g, l)
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy([]float64{0.5, 0.5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("H(1/2,1/2) = %g, want 1", got)
	}
	if got := Entropy([]float64{1, 0}); math.Abs(got) > 1e-12 {
		t.Errorf("H(1,0) = %g, want 0", got)
	}
	u := []float64{0.25, 0.25, 0.25, 0.25}
	if got := Entropy(u); math.Abs(got-2) > 1e-12 {
		t.Errorf("H(uniform 4) = %g, want 2", got)
	}
}

func TestKLDivergence(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.25, 0.75}
	want := 0.5*math.Log2(2) + 0.5*math.Log2(0.5/0.75)
	if got := KLDivergence(p, q); math.Abs(got-want) > 1e-12 {
		t.Errorf("KL = %g, want %g", got, want)
	}
	if got := KLDivergence(p, p); math.Abs(got) > 1e-12 {
		t.Errorf("KL(p,p) = %g, want 0", got)
	}
	if got := KLDivergence([]float64{1, 0}, []float64{0, 1}); !math.IsInf(got, 1) {
		t.Errorf("KL with zero support = %g, want +Inf", got)
	}
}

func TestKLNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		p := make([]float64, n)
		q := make([]float64, n)
		var sp, sq float64
		for i := range p {
			p[i], q[i] = rng.Float64()+1e-9, rng.Float64()+1e-9
			sp += p[i]
			sq += q[i]
		}
		for i := range p {
			p[i] /= sp
			q[i] /= sq
		}
		return KLDivergence(p, q) >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMode(t *testing.T) {
	idx, alpha := Mode([]float64{0.1, 0.6, 0.3})
	if idx != 1 || math.Abs(alpha-0.6) > 1e-12 {
		t.Errorf("Mode = (%d, %g), want (1, 0.6)", idx, alpha)
	}
	idx, alpha = Mode([]float64{0, 0, 0})
	if idx != -1 || alpha != 0 {
		t.Errorf("Mode of zeros = (%d, %g), want (-1, 0)", idx, alpha)
	}
	// Ties resolve to the lowest index.
	idx, _ = Mode([]float64{0.4, 0.4, 0.2})
	if idx != 0 {
		t.Errorf("tie mode = %d, want 0", idx)
	}
}

func TestModeAlphaRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		v := make([]float64, n)
		any := false
		for i := range v {
			v[i] = rng.Float64()
			if v[i] > 0 {
				any = true
			}
		}
		idx, alpha := Mode(v)
		if !any {
			return idx == -1 && alpha == 0
		}
		// α ∈ [1/|X|, 1] per §IV.
		return idx >= 0 && alpha >= 1/float64(n)-1e-12 && alpha <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestImproves(t *testing.T) {
	if Improves(1.0, 1.0) {
		t.Error("equal values should not improve")
	}
	if Improves(1.0+1e-15, 1.0) {
		t.Error("noise-level difference should not improve")
	}
	if !Improves(1.001, 1.0) {
		t.Error("real improvement rejected")
	}
	if !Improves(-5, math.Inf(-1)) {
		t.Error("anything finite should beat -Inf")
	}
	if Improves(math.Inf(-1), math.Inf(-1)) {
		t.Error("-Inf should not beat -Inf")
	}
}
