package partition

import (
	"testing"

	"ocelotl/internal/hierarchy"
)

func h4(t *testing.T) *hierarchy.Hierarchy {
	t.Helper()
	h, err := hierarchy.FromPaths([]string{"A/a0", "A/a1", "B/b0", "B/b1"})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestAreaGeometry(t *testing.T) {
	h := h4(t)
	a := Area{Node: h.ByPath["A"], I: 2, J: 4}
	if a.Leaves() != 2 || a.Slices() != 3 || a.MicroAreas() != 6 {
		t.Errorf("geometry: leaves=%d slices=%d micro=%d", a.Leaves(), a.Slices(), a.MicroAreas())
	}
	if got := a.String(); got != "A[2..4]" {
		t.Errorf("String = %q", got)
	}
	root := Area{Node: h.Root, I: 0, J: 0}
	if got := root.String(); got != "<root>[0..0]" {
		t.Errorf("root String = %q", got)
	}
}

func TestValidateAccepts(t *testing.T) {
	h := h4(t)
	pt := &Partition{Areas: []Area{
		{Node: h.ByPath["A"], I: 0, J: 2},
		{Node: h.ByPath["B"], I: 0, J: 0},
		{Node: h.ByPath["B"], I: 1, J: 2},
	}}
	if err := pt.Validate(h, 3); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
}

func TestValidateMicroscopic(t *testing.T) {
	h := h4(t)
	var pt Partition
	for _, l := range h.Leaves {
		for ti := 0; ti < 2; ti++ {
			pt.Areas = append(pt.Areas, Area{Node: l, I: ti, J: ti})
		}
	}
	if err := pt.Validate(h, 2); err != nil {
		t.Errorf("microscopic partition rejected: %v", err)
	}
	if !pt.IsMicroscopic() {
		t.Error("IsMicroscopic = false")
	}
}

func TestValidateRejectsGap(t *testing.T) {
	h := h4(t)
	pt := &Partition{Areas: []Area{{Node: h.ByPath["A"], I: 0, J: 1}}}
	if err := pt.Validate(h, 2); err == nil {
		t.Error("partition with uncovered areas accepted")
	}
}

func TestValidateRejectsOverlap(t *testing.T) {
	h := h4(t)
	pt := &Partition{Areas: []Area{
		{Node: h.Root, I: 0, J: 1},
		{Node: h.ByPath["A"], I: 0, J: 0},
	}}
	if err := pt.Validate(h, 2); err == nil {
		t.Error("overlapping partition accepted")
	}
}

func TestValidateRejectsBadInterval(t *testing.T) {
	h := h4(t)
	for _, a := range []Area{
		{Node: h.Root, I: -1, J: 1},
		{Node: h.Root, I: 0, J: 5},
		{Node: h.Root, I: 2, J: 1},
	} {
		pt := &Partition{Areas: []Area{a}}
		if err := pt.Validate(h, 2); err == nil {
			t.Errorf("area %v accepted", a)
		}
	}
	if err := (&Partition{Areas: []Area{{Node: nil, I: 0, J: 0}}}).Validate(h, 1); err == nil {
		t.Error("nil node accepted")
	}
}

func TestValidateRejectsForeignNode(t *testing.T) {
	h := h4(t)
	other := h4(t)
	pt := &Partition{Areas: []Area{{Node: other.Root, I: 0, J: 0}}}
	if err := pt.Validate(h, 1); err == nil {
		t.Error("node from another hierarchy accepted")
	}
}

func TestSortAndSignature(t *testing.T) {
	h := h4(t)
	a := &Partition{Areas: []Area{
		{Node: h.ByPath["B"], I: 0, J: 1},
		{Node: h.ByPath["A"], I: 0, J: 1},
	}}
	b := &Partition{Areas: []Area{
		{Node: h.ByPath["A"], I: 0, J: 1},
		{Node: h.ByPath["B"], I: 0, J: 1},
	}}
	if a.Signature() != b.Signature() {
		t.Error("signature depends on area order")
	}
	c := &Partition{Areas: []Area{{Node: h.Root, I: 0, J: 1}}}
	if a.Signature() == c.Signature() {
		t.Error("different partitions share a signature")
	}
	a.Sort()
	if a.Areas[0].Node.Path != "A" {
		t.Errorf("sort order wrong: first area %v", a.Areas[0])
	}
}

func TestIsFullAggregation(t *testing.T) {
	h := h4(t)
	pt := &Partition{Areas: []Area{{Node: h.Root, I: 0, J: 4}}}
	if !pt.IsFullAggregation(h, 5) {
		t.Error("full aggregation not recognized")
	}
	if pt.IsFullAggregation(h, 6) {
		t.Error("wrong slice count accepted as full aggregation")
	}
	pt2 := &Partition{Areas: []Area{{Node: h.ByPath["A"], I: 0, J: 4}, {Node: h.ByPath["B"], I: 0, J: 4}}}
	if pt2.IsFullAggregation(h, 5) {
		t.Error("two-area partition accepted as full aggregation")
	}
}

func TestCountByKind(t *testing.T) {
	h := h4(t)
	pt := &Partition{Areas: []Area{
		{Node: h.Leaves[0], I: 0, J: 0},   // micro
		{Node: h.Leaves[1], I: 0, J: 3},   // temporal-only
		{Node: h.ByPath["B"], I: 0, J: 0}, // spatial-only
		{Node: h.ByPath["B"], I: 1, J: 3}, // both
		{Node: h.Leaves[0], I: 1, J: 3},   // temporal-only
		{Node: h.Leaves[1], I: 0, J: 0},   // micro (geometry only; overlap not checked here)
	}}
	micro, sp, te, both := pt.CountByKind()
	if micro != 2 || sp != 1 || te != 2 || both != 1 {
		t.Errorf("CountByKind = (%d,%d,%d,%d)", micro, sp, te, both)
	}
}

func TestTemporalCutsUnder(t *testing.T) {
	h := h4(t)
	pt := &Partition{Areas: []Area{
		{Node: h.Leaves[0], I: 0, J: 1},
		{Node: h.Leaves[0], I: 2, J: 3},
		{Node: h.Leaves[1], I: 0, J: 3},
		{Node: h.ByPath["B"], I: 0, J: 3},
	}}
	cuts := pt.TemporalCutsUnder(h.ByPath["A"], 4)
	if len(cuts[0]) != 1 || cuts[0][0] != 1 {
		t.Errorf("leaf 0 cuts = %v, want [1]", cuts[0])
	}
	if len(cuts[1]) != 0 {
		t.Errorf("leaf 1 cuts = %v, want none", cuts[1])
	}
	if _, ok := cuts[2]; ok {
		t.Error("cuts include resources outside the node")
	}
}

func TestNumAreas(t *testing.T) {
	h := h4(t)
	pt := &Partition{Areas: []Area{{Node: h.Root, I: 0, J: 0}}}
	if pt.NumAreas() != 1 {
		t.Errorf("NumAreas = %d", pt.NumAreas())
	}
}
