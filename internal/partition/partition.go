// Package partition defines spatiotemporal partitions (paper §III.B): the
// structure-consistent decompositions of S×T into macroscopic areas, each
// the Cartesian product of a hierarchy node and a time interval.
package partition

import (
	"fmt"
	"sort"
	"strings"

	"ocelotl/internal/hierarchy"
)

// Area is one macroscopic spatiotemporal area (S_k, T_(i,j)) ∈ A(S×T):
// hierarchy node Node over the slice interval [I, J] (inclusive).
type Area struct {
	Node *hierarchy.Node
	I, J int
}

// Leaves returns |S_k|, the number of resources under the area.
func (a Area) Leaves() int { return a.Node.Size() }

// Slices returns the interval length j−i+1.
func (a Area) Slices() int { return a.J - a.I + 1 }

// MicroAreas returns the number of microscopic areas covered.
func (a Area) MicroAreas() int { return a.Leaves() * a.Slices() }

// String renders the area as "path[i..j]".
func (a Area) String() string {
	p := a.Node.Path
	if p == "" {
		p = "<root>"
	}
	return fmt.Sprintf("%s[%d..%d]", p, a.I, a.J)
}

// Partition is a hierarchy-and-order-consistent partition P(S×T) together
// with the quality measures of the run that produced it.
type Partition struct {
	Areas []Area
	// P is the gain/loss trade-off ratio the partition was computed for.
	P float64
	// Gain, Loss and PIC are the partition totals (sums over areas and
	// states) under Eq. 2–4.
	Gain, Loss, PIC float64
}

// NumAreas returns the number of macroscopic aggregates.
func (pt *Partition) NumAreas() int { return len(pt.Areas) }

// Sort orders areas canonically: by leaf range start, then interval start,
// then by decreasing node size (ancestors first). Algorithms may emit areas
// in recursion order; sorting makes signatures and golden output stable.
func (pt *Partition) Sort() {
	sort.Slice(pt.Areas, func(a, b int) bool {
		x, y := pt.Areas[a], pt.Areas[b]
		if x.Node.Lo != y.Node.Lo {
			return x.Node.Lo < y.Node.Lo
		}
		if x.I != y.I {
			return x.I < y.I
		}
		if x.Node.Hi != y.Node.Hi {
			return x.Node.Hi > y.Node.Hi
		}
		return x.J < y.J
	})
}

// Signature returns a canonical string identifying the partition's shape
// (used to detect partition changes while sweeping p).
func (pt *Partition) Signature() string {
	cp := &Partition{Areas: append([]Area(nil), pt.Areas...)}
	cp.Sort()
	var b strings.Builder
	for _, a := range cp.Areas {
		fmt.Fprintf(&b, "%d-%d:%d-%d;", a.Node.Lo, a.Node.Hi, a.I, a.J)
	}
	return b.String()
}

// Validate checks that the areas form a partition of S×T for the given
// hierarchy and slice count: structure-consistent, pairwise disjoint, and
// covering every microscopic area exactly once.
func (pt *Partition) Validate(h *hierarchy.Hierarchy, slices int) error {
	n := h.NumLeaves()
	if slices <= 0 {
		return fmt.Errorf("partition: non-positive slice count %d", slices)
	}
	covered := make([]int, n*slices)
	for _, a := range pt.Areas {
		if a.Node == nil {
			return fmt.Errorf("partition: area with nil node")
		}
		if got := h.Nodes[a.Node.ID]; got != a.Node {
			return fmt.Errorf("partition: area %v references a node outside the hierarchy", a)
		}
		if a.I < 0 || a.J >= slices || a.I > a.J {
			return fmt.Errorf("partition: area %v has invalid interval (|T|=%d)", a, slices)
		}
		for s := a.Node.Lo; s < a.Node.Hi; s++ {
			for t := a.I; t <= a.J; t++ {
				covered[s*slices+t]++
			}
		}
	}
	for s := 0; s < n; s++ {
		for t := 0; t < slices; t++ {
			switch c := covered[s*slices+t]; {
			case c == 0:
				return fmt.Errorf("partition: microscopic area (s=%d,t=%d) uncovered", s, t)
			case c > 1:
				return fmt.Errorf("partition: microscopic area (s=%d,t=%d) covered %d times", s, t, c)
			}
		}
	}
	return nil
}

// IsMicroscopic reports whether every area is a single microscopic cell.
func (pt *Partition) IsMicroscopic() bool {
	for _, a := range pt.Areas {
		if a.MicroAreas() != 1 {
			return false
		}
	}
	return true
}

// IsFullAggregation reports whether the partition is the single root area.
func (pt *Partition) IsFullAggregation(h *hierarchy.Hierarchy, slices int) bool {
	return len(pt.Areas) == 1 && pt.Areas[0].Node == h.Root &&
		pt.Areas[0].I == 0 && pt.Areas[0].J == slices-1
}

// TemporalCutsUnder returns the sorted set of temporal cut positions
// (indices t such that some area under node ends at t with t < |T|-1)
// restricted to areas whose node is a descendant-or-self of node. Renderers
// use it to decide whether visually-aggregated children share the same
// temporal partitioning (the diagonal-vs-cross mark of §IV).
func (pt *Partition) TemporalCutsUnder(node *hierarchy.Node, slices int) map[int][]int {
	cuts := make(map[int][]int) // leaf index -> sorted end positions
	for _, a := range pt.Areas {
		if !node.Contains(a.Node) {
			continue
		}
		for s := a.Node.Lo; s < a.Node.Hi; s++ {
			if a.J < slices-1 {
				cuts[s] = append(cuts[s], a.J)
			}
		}
	}
	for s := range cuts {
		sort.Ints(cuts[s])
	}
	return cuts
}

// CountByKind returns how many areas are single microscopic cells, how many
// are spatial-only aggregates (one slice, many resources), temporal-only
// (one resource, many slices), and how many are genuinely two-dimensional.
func (pt *Partition) CountByKind() (micro, spatialOnly, temporalOnly, both int) {
	for _, a := range pt.Areas {
		rs, ts := a.Leaves() > 1, a.Slices() > 1
		switch {
		case !rs && !ts:
			micro++
		case rs && !ts:
			spatialOnly++
		case !rs && ts:
			temporalOnly++
		default:
			both++
		}
	}
	return
}
