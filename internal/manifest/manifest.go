package manifest

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"

	"ocelotl/internal/failpoint"
)

// FailpointWrite and FailpointLoad name the fault-injection sites at the
// journal's two I/O boundaries. The write-side site fires after the temp
// file has been written and fsynced but before the rename publishes it,
// so an armed error (or a kill -9 at the same instant) leaves the
// previous manifest intact plus a stale temp — exactly the debris the
// startup sweep must tolerate.
const (
	FailpointWrite = "manifest/write"
	FailpointLoad  = "manifest/load"
)

// FileName is the manifest's name inside the state directory.
const FileName = "MANIFEST.ocmf"

// tmpPrefix names in-flight manifest writes; Open sweeps leftovers.
const tmpPrefix = ".ocmf-write-"

const (
	magic   = "OCMF"
	version = 1
	// headerSize is magic(4) + version(4) + payload length(8) + CRC32(4).
	headerSize = 20
	// maxPayload bounds the decoded payload length before any allocation,
	// so a bit-flipped length field cannot commit gigabytes.
	maxPayload = 64 << 20
)

// CorruptError marks a manifest that exists but cannot be trusted:
// truncation, bad magic, version skew, or a checksum mismatch. Recovery
// treats it as "no usable manifest" (quarantine and start empty) rather
// than a fatal boot error.
type CorruptError struct {
	Path string
	Err  error
}

func (e *CorruptError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("manifest: corrupt: %v", e.Err)
	}
	return fmt.Sprintf("manifest: %s: corrupt: %v", e.Path, e.Err)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// IsCorrupt reports whether err classifies as manifest corruption, as
// opposed to a missing file or an I/O failure.
func IsCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}

// FollowState journals one follower's resume point. Offset is the
// committed byte offset from traceio.TailReader.Offset — the position
// just past the last fully ingested record — which OpenTailAt accepts to
// resume the tail without re-reading the prefix. AnchorLo/AnchorHi/Slices
// are the live grid's exact floats (the anchor timeslice.Slicer), Pan the
// live window's shift on it, Horizon the max event start ingested, Ticks
// the ingestion ticks carried over for Info continuity, PollMs the tail
// poll interval.
type FollowState struct {
	Offset   int64   `json:"offset"`
	AnchorLo float64 `json:"anchor_lo"`
	AnchorHi float64 `json:"anchor_hi"`
	Slices   int     `json:"slices"`
	Pan      int     `json:"pan"`
	Horizon  float64 `json:"horizon"`
	Ticks    int64   `json:"ticks"`
	PollMs   int     `json:"poll_ms"`
}

// TraceState journals one loaded trace. Index is the backend actually in
// use ("ram" or "disk"); Store is the sealed eventstore file for disk
// backends (empty otherwise) — recovery reopens it in place instead of
// rebuilding the index from the trace. Gen is the registry generation,
// restored so Info and cache-key lineage stay stable across restarts.
// Traces loaded from memory (no source path) cannot be journaled.
type TraceState struct {
	ID     string       `json:"id"`
	Path   string       `json:"path"`
	Index  string       `json:"index"`
	Store  string       `json:"store,omitempty"`
	Gen    uint64       `json:"gen"`
	Follow *FollowState `json:"follow,omitempty"`
}

// Manifest is one durable snapshot of the daemon's serving state. Seq
// increases by one per checkpoint, so two manifests from one lineage are
// ordered without trusting file timestamps.
type Manifest struct {
	Seq    uint64       `json:"seq"`
	Traces []TraceState `json:"traces"`
}

// Encode serializes m into the versioned, CRC'd envelope.
func Encode(m *Manifest) ([]byte, error) {
	payload, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("manifest: encode: %w", err)
	}
	buf := make([]byte, headerSize+len(payload))
	copy(buf[0:4], magic)
	binary.LittleEndian.PutUint32(buf[4:8], version)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint32(buf[16:20], crc32.ChecksumIEEE(payload))
	copy(buf[headerSize:], payload)
	return buf, nil
}

// Decode validates the envelope and returns the manifest it carries.
// Every failure mode — truncation, bad magic, version skew, a length
// that disagrees with the input, a checksum mismatch, unparseable JSON —
// is a CorruptError; Decode never panics on arbitrary input (fuzzed).
func Decode(data []byte) (*Manifest, error) {
	corrupt := func(format string, args ...any) error {
		return &CorruptError{Err: fmt.Errorf(format, args...)}
	}
	if len(data) < headerSize {
		return nil, corrupt("%d bytes is shorter than the %d-byte header", len(data), headerSize)
	}
	if string(data[0:4]) != magic {
		return nil, corrupt("bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != version {
		return nil, corrupt("unsupported manifest version %d (want %d)", v, version)
	}
	plen := binary.LittleEndian.Uint64(data[8:16])
	if plen > maxPayload {
		return nil, corrupt("payload length %d exceeds the %d-byte bound", plen, maxPayload)
	}
	if uint64(len(data)-headerSize) != plen {
		return nil, corrupt("payload length %d does not match the %d trailing bytes (torn write?)", plen, len(data)-headerSize)
	}
	payload := data[headerSize:]
	want := binary.LittleEndian.Uint32(data[16:20])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, corrupt("payload checksum mismatch: header says %08x, payload hashes to %08x", want, got)
	}
	var m Manifest
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, corrupt("payload JSON: %v", err)
	}
	return &m, nil
}

// LoadFile reads and decodes the manifest at path. A missing file is
// (nil, nil) — a daemon booting a fresh state directory has no state to
// recover, which is not an error. LoadFile is read-only (no temp sweep),
// so a live scrub can call it while the owning daemon keeps writing.
func LoadFile(path string) (*Manifest, error) {
	if err := failpoint.Inject(FailpointLoad); err != nil {
		return nil, fmt.Errorf("manifest: %s: %w", path, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	m, err := Decode(data)
	if err != nil {
		var ce *CorruptError
		if errors.As(err, &ce) {
			ce.Path = path
		}
		return nil, err
	}
	return m, nil
}

// Journal owns the manifest file of one state directory and writes it
// atomically. Safe for use by one process at a time (the daemon); Save
// calls may come from any goroutine but must be externally serialized
// (the server's state keeper is that serialization).
type Journal struct {
	dir  string
	path string
}

// Open prepares the journal in dir, creating the directory if needed and
// sweeping stale in-flight temp files left by a crashed writer. It does
// not read the manifest; call Load.
func Open(dir string) (*Journal, error) {
	if dir == "" {
		return nil, fmt.Errorf("manifest: empty state directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("manifest: state dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("manifest: state dir: %w", err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return &Journal{dir: dir, path: filepath.Join(dir, FileName)}, nil
}

// Dir returns the state directory.
func (j *Journal) Dir() string { return j.dir }

// Path returns the manifest file's path.
func (j *Journal) Path() string { return j.path }

// Load reads the current manifest; (nil, nil) when none exists yet.
func (j *Journal) Load() (*Manifest, error) { return LoadFile(j.path) }

// Save atomically replaces the manifest with m: the envelope is written
// to a temp file in the same directory, fsynced, renamed over the
// manifest, and the directory is fsynced so the rename itself is
// durable. A crash (or an armed manifest/write failpoint) at any point
// leaves either the previous manifest or the new one.
func (j *Journal) Save(m *Manifest) error {
	data, err := Encode(m)
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(j.dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("manifest: save: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("manifest: save: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("manifest: save: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("manifest: save: %w", err)
	}
	// The temp is durable but unpublished: the torn-write window. The
	// failpoint deliberately leaves the temp behind, like a crash would.
	if err := failpoint.Inject(FailpointWrite); err != nil {
		return fmt.Errorf("manifest: %s: %w", j.path, err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("manifest: save: %w", err)
	}
	return SyncDir(j.dir)
}

// Quarantine moves the manifest aside (FileName + ".corrupt"), so a
// damaged journal is preserved for inspection while the daemon starts
// over with an empty one. Reports whether a file was moved.
func (j *Journal) Quarantine() (bool, error) {
	dst := j.path + ".corrupt"
	if err := os.Rename(j.path, dst); err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("manifest: quarantine: %w", err)
	}
	return true, SyncDir(j.dir)
}

// SyncDir fsyncs a directory, making a just-completed rename in it
// durable. Exposed for the serving layer's other atomic-publish sites
// (store quarantine renames) so fsync discipline stays in one place.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("manifest: sync dir: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("manifest: sync dir %s: %w", dir, err)
	}
	return nil
}
