// Package manifest journals the daemon's durable state: which traces are
// loaded (id, source path, generation, index backend, sealed store file)
// and where each live-ingestion follower stands (committed tail offset,
// live-window grid, horizon, tick count). The serving layer checkpoints a
// Manifest on every load/unload and periodically during follow ticks; on
// boot it loads the manifest back and rebuilds the same serving state —
// reopening sealed eventstore files in place and resuming followers from
// their journaled offsets — so a crashed or redeployed ocelotld answers
// exactly as an uninterrupted one would.
//
// Layering: manifest sits beside eventstore under the serving layer. It
// knows nothing about reslicers, caches, or HTTP — it (de)serializes one
// small, CRC'd, versioned envelope and writes it atomically (temp file +
// fsync + rename + parent-directory fsync), so a crash at any byte leaves
// either the previous manifest or the new one, never a torn hybrid. The
// server package owns what the journaled fields mean (internal/server's
// recovery path); cmd/ocelotld owns where the journal lives (-state-dir).
//
// The envelope is magic ("OCMF") + version + payload length + CRC32 of
// the payload + a JSON payload. JSON keeps the state debuggable with
// standard tools (`tail -c +20 MANIFEST.ocmf | jq .`); the binary header
// is what makes truncation and bit flips loudly detectable rather than
// silently parseable. Decode never trusts a length it has not bounded
// against the input and is fuzzed with torn and bit-flipped corpora.
//
// Failpoints manifest/write and manifest/load inject faults at the two
// I/O boundaries; the write-side injection fires after the temp file is
// durable but before the rename, so an armed error leaves exactly the
// torn-write debris a kill -9 would.
package manifest
