package manifest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ocelotl/internal/failpoint"
)

func sampleManifest() *Manifest {
	return &Manifest{
		Seq: 7,
		Traces: []TraceState{
			{
				ID:    "mpi",
				Path:  "/traces/mpi.otb",
				Index: "disk",
				Store: "/state/stores/mpi.oces",
				Gen:   3,
				Follow: &FollowState{
					Offset:   4096,
					AnchorLo: 0,
					AnchorHi: 12.5,
					Slices:   50,
					Pan:      4,
					Horizon:  11.875,
					Ticks:    42,
					PollMs:   50,
				},
			},
			{ID: "art", Path: "/traces/art.csv", Index: "ram", Gen: 1},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := sampleManifest()
	data, err := Encode(m)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Seq != m.Seq || len(got.Traces) != len(m.Traces) {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, m)
	}
	for i := range m.Traces {
		a, b := got.Traces[i], m.Traces[i]
		if a.ID != b.ID || a.Path != b.Path || a.Index != b.Index || a.Store != b.Store || a.Gen != b.Gen {
			t.Fatalf("trace %d mismatch: got %+v want %+v", i, a, b)
		}
		if (a.Follow == nil) != (b.Follow == nil) {
			t.Fatalf("trace %d follow presence mismatch", i)
		}
		if a.Follow != nil && *a.Follow != *b.Follow {
			t.Fatalf("trace %d follow mismatch: got %+v want %+v", i, *a.Follow, *b.Follow)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	valid, err := Encode(sampleManifest())
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"short header", func(b []byte) []byte { return b[:headerSize-1] }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"bad version", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], 99)
			return b
		}},
		{"huge length", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:16], maxPayload+1)
			return b
		}},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-3] }},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xFF) }},
		{"payload bit flip", func(b []byte) []byte { b[headerSize+5] ^= 0x10; return b }},
		{"crc bit flip", func(b []byte) []byte { b[16] ^= 0x01; return b }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), valid...))
			_, err := Decode(data)
			if err == nil {
				t.Fatal("Decode accepted corrupt input")
			}
			if !IsCorrupt(err) {
				t.Fatalf("want CorruptError, got %T: %v", err, err)
			}
		})
	}
}

func TestJournalSaveLoad(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Fresh directory: no manifest yet.
	if m, err := j.Load(); err != nil || m != nil {
		t.Fatalf("Load on empty dir: m=%v err=%v", m, err)
	}
	want := sampleManifest()
	if err := j.Save(want); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := j.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got == nil || got.Seq != want.Seq || len(got.Traces) != 2 {
		t.Fatalf("Load returned %+v", got)
	}
	// Save again: atomic replace, no temp debris.
	want.Seq++
	if err := j.Save(want); err != nil {
		t.Fatalf("second Save: %v", err)
	}
	got, err = j.Load()
	if err != nil || got.Seq != want.Seq {
		t.Fatalf("reload after replace: got %+v err=%v", got, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			t.Fatalf("temp debris after successful Save: %s", e.Name())
		}
	}
}

func TestJournalPayloadIsJSON(t *testing.T) {
	// The payload after the binary header must stay plain JSON — the
	// documented `tail -c +21 | jq .` debugging path.
	dir := t.TempDir()
	j, _ := Open(dir)
	if err := j.Save(sampleManifest()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	payload := data[headerSize:]
	if !bytes.HasPrefix(payload, []byte("{")) || !bytes.HasSuffix(payload, []byte("}")) {
		t.Fatalf("payload is not a JSON object: %q", payload)
	}
}

func TestJournalWriteFailpointLeavesTornDebris(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	old := sampleManifest()
	if err := j.Save(old); err != nil {
		t.Fatalf("initial Save: %v", err)
	}
	if err := failpoint.Enable(FailpointWrite, "error(torn)"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.DisableAll()
	next := sampleManifest()
	next.Seq = 99
	err = j.Save(next)
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	// The previous manifest must be intact — the fault fired before the
	// rename — and the durable-but-unpublished temp must be left behind.
	got, lerr := j.Load()
	if lerr != nil || got == nil || got.Seq != old.Seq {
		t.Fatalf("previous manifest damaged: got %+v err=%v", got, lerr)
	}
	entries, _ := os.ReadDir(dir)
	var temps int
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			temps++
		}
	}
	if temps == 0 {
		t.Fatal("no torn-write temp left behind by the armed failpoint")
	}
	failpoint.DisableAll()
	// Re-opening the journal sweeps the debris, like a restart would.
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	entries, _ = os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			t.Fatalf("Open did not sweep stale temp %s", e.Name())
		}
	}
}

func TestJournalLoadFailpoint(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir)
	if err := j.Save(sampleManifest()); err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable(FailpointLoad, "error(io)"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.DisableAll()
	_, err := j.Load()
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	if IsCorrupt(err) {
		t.Fatal("injected I/O error must not classify as corruption")
	}
}

func TestQuarantine(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir)

	// Nothing to quarantine on a fresh directory.
	moved, err := j.Quarantine()
	if err != nil || moved {
		t.Fatalf("Quarantine empty: moved=%v err=%v", moved, err)
	}

	// A corrupt manifest (simulated torn write: valid prefix, truncated)
	// moves aside and leaves the journal startable.
	data, _ := Encode(sampleManifest())
	if err := os.WriteFile(j.Path(), data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Load(); !IsCorrupt(err) {
		t.Fatalf("want corruption from torn manifest, got %v", err)
	}
	moved, err = j.Quarantine()
	if err != nil || !moved {
		t.Fatalf("Quarantine: moved=%v err=%v", moved, err)
	}
	if m, err := j.Load(); err != nil || m != nil {
		t.Fatalf("after quarantine Load should be empty: m=%v err=%v", m, err)
	}
	if _, err := os.Stat(filepath.Join(dir, FileName+".corrupt")); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
}

func TestLoadFileMissing(t *testing.T) {
	m, err := LoadFile(filepath.Join(t.TempDir(), "nope.ocmf"))
	if err != nil || m != nil {
		t.Fatalf("missing file: m=%v err=%v", m, err)
	}
}

// FuzzManifestDecode throws arbitrary bytes at Decode: it must never
// panic, and any accepted input must re-encode to a decodable manifest
// (decode/encode/decode stability).
func FuzzManifestDecode(f *testing.F) {
	valid, err := Encode(sampleManifest())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // torn write
	f.Add([]byte{})             // empty
	f.Add([]byte("OCMF"))       // magic only
	flipped := append([]byte(nil), valid...)
	flipped[headerSize+2] ^= 0x40
	f.Add(flipped) // payload bit flip
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(huge[8:16], 1<<60)
	f.Add(huge) // absurd length field

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			if !IsCorrupt(err) {
				t.Fatalf("non-corrupt decode error %T: %v", err, err)
			}
			return
		}
		re, err := Encode(m)
		if err != nil {
			t.Fatalf("accepted manifest failed to re-encode: %v", err)
		}
		if _, err := Decode(re); err != nil {
			t.Fatalf("re-encoded manifest failed to decode: %v", err)
		}
	})
}
