package analysis

import (
	"strings"
	"testing"

	"ocelotl/internal/core"
	"ocelotl/internal/grid5000"
	"ocelotl/internal/hierarchy"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/timeslice"
)

func caseAModel(t *testing.T) (*mpisim.Result, *microscopic.Model) {
	t.Helper()
	res, err := mpisim.GenerateCase(grid5000.CaseA, mpisim.Config{Seed: 9, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	m, err := microscopic.Build(res.Trace, microscopic.Options{Slices: 30})
	if err != nil {
		t.Fatal(err)
	}
	return res, m
}

func TestPhasesFindInitAndComputation(t *testing.T) {
	_, m := caseAModel(t)
	phases := Phases(m)
	if len(phases) < 2 {
		t.Fatalf("got %d phases", len(phases))
	}
	// First phase: MPI_Init from t=0.
	if phases[0].Mode != mpisim.StateInit || phases[0].Start != 0 {
		t.Errorf("first phase = %+v, want MPI_Init at 0", phases[0])
	}
	// Init ends around 1.6 s (17% of 9.5 s), slice-quantized.
	if phases[0].End < 1.0 || phases[0].End > 2.4 {
		t.Errorf("init phase ends at %g, want ≈1.6", phases[0].End)
	}
	// Phases tile the window.
	for i := 1; i < len(phases); i++ {
		if phases[i].FirstSlice != phases[i-1].LastSlice+1 {
			t.Errorf("phase gap between %+v and %+v", phases[i-1], phases[i])
		}
	}
	last := phases[len(phases)-1]
	if last.LastSlice != m.NumSlices()-1 {
		t.Errorf("last phase ends at slice %d, want %d", last.LastSlice, m.NumSlices()-1)
	}
}

func TestDeviatingResourcesFindsPerturbedRanks(t *testing.T) {
	res, m := caseAModel(t)
	in := core.NewInput(m, core.Options{})
	pt, err := in.NewSolver().Run(0.2)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Perturbations[0]
	lo := m.Slicer.SliceOf(p.Start) - 1
	hi := m.Slicer.SliceOf(p.End) + 1
	devs := DeviatingResources(m, pt, lo, hi)
	// The perturbed ranks should be overrepresented among deviators.
	pert := map[string]bool{}
	for _, r := range p.Ranks {
		pert[res.Trace.Resources[r]] = true
	}
	hits := 0
	for _, d := range devs {
		if pert[d.Path] {
			hits++
		}
	}
	if len(devs) == 0 {
		t.Fatal("no deviating resources found around the perturbation")
	}
	if hits*2 < len(devs) {
		t.Errorf("only %d of %d deviators are truly perturbed", hits, len(devs))
	}
}

func TestSummarizeClustersCaseC(t *testing.T) {
	res, err := mpisim.GenerateCase(grid5000.CaseC, mpisim.Config{Seed: 4, EventTarget: 250000})
	if err != nil {
		t.Fatal(err)
	}
	m, err := microscopic.Build(res.Trace, microscopic.Options{Slices: 30})
	if err != nil {
		t.Fatal(err)
	}
	in := core.NewInput(m, core.Options{})
	pt, err := in.NewSolver().Run(0.35)
	if err != nil {
		t.Fatal(err)
	}
	sums := SummarizeClusters(in, pt, 2)
	if len(sums) != 3 {
		t.Fatalf("got %d clusters: %+v", len(sums), sums)
	}
	byName := map[string]ClusterSummary{}
	for _, c := range sums {
		byName[strings.TrimPrefix(c.Path, "nancy/")] = c
	}
	graphene, graphite := byName["graphene"], byName["graphite"]
	// The paper's Fig. 4 reading: Graphite (slow Ethernet, per-rank
	// heterogeneity) fragments into far more areas than Graphene.
	if graphite.Areas <= graphene.Areas {
		t.Errorf("graphite (%d areas) should fragment more than graphene (%d)", graphite.Areas, graphene.Areas)
	}
	if graphite.SpatiallyMerged {
		t.Error("graphite should be spatially separated")
	}
}

func TestDescribeAndFormat(t *testing.T) {
	_, m := caseAModel(t)
	in := core.NewInput(m, core.Options{})
	pt, err := in.NewSolver().Run(0.3)
	if err != nil {
		t.Fatal(err)
	}
	rep := Describe(in, pt, 2)
	if rep.Areas != pt.NumAreas() {
		t.Errorf("report areas = %d", rep.Areas)
	}
	text := rep.Format(m.States)
	for _, want := range []string{"phases:", "MPI_Init", "areas"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

func TestDeviatingResourcesHomogeneous(t *testing.T) {
	// A perfectly homogeneous model has no deviators.
	h, _ := hierarchy.FromPaths([]string{"c/a", "c/b", "c/c"})
	sl, _ := timeslice.New(0, 10, 10)
	m := microscopic.NewEmpty(h, sl, []string{"x"})
	for s := 0; s < 3; s++ {
		for ti := 0; ti < 10; ti++ {
			m.AddD(0, s, ti, 0.5)
		}
	}
	in := core.NewInput(m, core.Options{})
	pt, err := in.NewSolver().Run(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if devs := DeviatingResources(m, pt, 0, 9); len(devs) != 0 {
		t.Errorf("homogeneous model has deviators: %v", devs)
	}
}

func TestPhasesIdleModel(t *testing.T) {
	h, _ := hierarchy.FromPaths([]string{"c/a"})
	sl, _ := timeslice.New(0, 5, 5)
	m := microscopic.NewEmpty(h, sl, []string{"x"})
	phases := Phases(m)
	if len(phases) != 1 || phases[0].Mode != -1 {
		t.Errorf("idle model phases = %+v", phases)
	}
}
