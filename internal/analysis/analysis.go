// Package analysis post-processes an optimal spatiotemporal partition into
// the findings the paper's case studies report (§V): the global temporal
// phases of the application, and the resources whose temporal behaviour
// deviates from their peers — the "detailed list of those who
// significantly are [impacted]" that §V.A highlights as an advantage over
// purely temporal techniques.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"ocelotl/internal/core"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/partition"
)

// Phase is a maximal run of slices sharing the same dominant state over
// the whole platform.
type Phase struct {
	// FirstSlice and LastSlice delimit the phase (inclusive).
	FirstSlice, LastSlice int
	// Start and End in trace time.
	Start, End float64
	// Mode is the dominant state index over the phase; Alpha its share.
	Mode  int
	Alpha float64
}

// Phases derives the application-level phases from the model: slices are
// labelled by their platform-wide dominant state and consecutive slices
// with the same label merge. This mirrors how an analyst reads the
// overview's vertical bands (MPI_Init band, transition, computation…).
func Phases(m *microscopic.Model) []Phase {
	var out []Phase
	for t := 0; t < m.NumSlices(); t++ {
		prof := m.SliceProfile(t)
		mode, alpha := modeOf(prof)
		lo, hi := m.Slicer.Bounds(t)
		if n := len(out); n > 0 && out[n-1].Mode == mode {
			out[n-1].LastSlice = t
			out[n-1].End = hi
			// Keep the weakest alpha as the phase's confidence.
			if alpha < out[n-1].Alpha {
				out[n-1].Alpha = alpha
			}
			continue
		}
		out = append(out, Phase{FirstSlice: t, LastSlice: t, Start: lo, End: hi, Mode: mode, Alpha: alpha})
	}
	return out
}

func modeOf(values []float64) (int, float64) {
	idx, max, sum := -1, 0.0, 0.0
	for i, v := range values {
		sum += v
		if idx == -1 || v > max {
			idx, max = i, v
		}
	}
	if sum <= 0 {
		return -1, 0
	}
	return idx, max / sum
}

// Deviation describes one resource whose temporal partitioning differs
// from the majority of its cluster during a slice window.
type Deviation struct {
	// Resource is the leaf index; Path its hierarchy path.
	Resource int
	Path     string
	// Cuts are the temporal cut positions this resource has inside the
	// window while the majority has none (or different ones).
	Cuts []int
}

// DeviatingResources finds resources whose temporal data partitioning
// within [fromSlice, toSlice] differs from the dominant partitioning of
// the whole platform — §V.A's list of significantly-impacted processes.
// A resource deviates when its multiset of cut positions inside the window
// differs from the most common multiset.
func DeviatingResources(m *microscopic.Model, pt *partition.Partition, fromSlice, toSlice int) []Deviation {
	T := m.NumSlices()
	cuts := pt.TemporalCutsUnder(m.H.Root, T)
	// Restrict cut positions to the window and canonicalize.
	sig := make(map[int]string, m.NumResources())
	perRes := make(map[int][]int, m.NumResources())
	for s := 0; s < m.NumResources(); s++ {
		var in []int
		for _, c := range cuts[s] {
			if c >= fromSlice && c <= toSlice {
				in = append(in, c)
			}
		}
		perRes[s] = in
		sig[s] = fmt.Sprint(in)
	}
	// Majority signature.
	counts := make(map[string]int)
	for _, v := range sig {
		counts[v]++
	}
	var majority string
	best := -1
	for k, c := range counts {
		if c > best || (c == best && k < majority) {
			majority, best = k, c
		}
	}
	var out []Deviation
	for s := 0; s < m.NumResources(); s++ {
		if sig[s] != majority {
			out = append(out, Deviation{Resource: s, Path: m.H.ResourcePaths[s], Cuts: perRes[s]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Resource < out[j].Resource })
	return out
}

// ClusterSummary aggregates the partition's behaviour per depth-k node:
// how many areas it was split into, whether it is spatially merged, and
// its dominant state.
type ClusterSummary struct {
	Path  string
	Areas int
	// SpatiallyMerged is true when the cluster appears as whole-node
	// areas only (never split below the cluster).
	SpatiallyMerged bool
	// TemporalCuts is the number of distinct temporal boundaries inside
	// the cluster.
	TemporalCuts int
	Mode         int
	Alpha        float64
}

// SummarizeClusters describes each node at the given hierarchy depth —
// the per-cluster reading of Fig. 4 (Graphene homogeneous, Graphite
// separated, Griffon ruptured).
func SummarizeClusters(in *core.Input, pt *partition.Partition, depth int) []ClusterSummary {
	m := in.Model
	var out []ClusterSummary
	for _, n := range m.H.Nodes {
		if n.Depth != depth || n.IsLeaf() {
			continue
		}
		cs := ClusterSummary{Path: n.Path, SpatiallyMerged: true}
		cutSet := map[int]bool{}
		for _, a := range pt.Areas {
			if !n.Contains(a.Node) {
				continue
			}
			cs.Areas++
			if a.Node != n {
				cs.SpatiallyMerged = false
			}
			if a.J < m.NumSlices()-1 {
				cutSet[a.J] = true
			}
		}
		cs.TemporalCuts = len(cutSet)
		info := in.Describe(partition.Area{Node: n, I: 0, J: m.NumSlices() - 1})
		cs.Mode, cs.Alpha = info.Mode, info.Alpha
		out = append(out, cs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Report is a human-readable digest of one aggregated trace.
type Report struct {
	Phases     []Phase
	Deviations []Deviation
	Clusters   []ClusterSummary
	Areas      int
	Gain, Loss float64
}

// Describe runs the standard §V reading of a partition: phases from the
// model, per-cluster summaries at the cluster depth, and deviating
// resources over the whole window.
func Describe(in *core.Input, pt *partition.Partition, clusterDepth int) Report {
	m := in.Model
	return Report{
		Phases:     Phases(m),
		Deviations: DeviatingResources(m, pt, 0, m.NumSlices()-1),
		Clusters:   SummarizeClusters(in, pt, clusterDepth),
		Areas:      pt.NumAreas(),
		Gain:       pt.Gain,
		Loss:       pt.Loss,
	}
}

// Format renders the report as text, naming states through the model.
func (r Report) Format(states []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "partition: %d areas (gain %.1f bits, loss %.1f bits)\n", r.Areas, r.Gain, r.Loss)
	b.WriteString("phases:\n")
	for _, p := range r.Phases {
		name := "idle"
		if p.Mode >= 0 && p.Mode < len(states) {
			name = states[p.Mode]
		}
		fmt.Fprintf(&b, "  %7.2fs – %7.2fs  %-14s (share %.0f%%)\n", p.Start, p.End, name, 100*p.Alpha)
	}
	if len(r.Clusters) > 0 {
		b.WriteString("clusters:\n")
		for _, c := range r.Clusters {
			shape := "spatially merged"
			if !c.SpatiallyMerged {
				shape = "spatially separated"
			}
			fmt.Fprintf(&b, "  %-28s %3d areas, %2d temporal cuts, %s\n", c.Path, c.Areas, c.TemporalCuts, shape)
		}
	}
	if len(r.Deviations) > 0 {
		fmt.Fprintf(&b, "deviating resources (%d):\n", len(r.Deviations))
		for i, d := range r.Deviations {
			if i == 12 {
				fmt.Fprintf(&b, "  … and %d more\n", len(r.Deviations)-i)
				break
			}
			fmt.Fprintf(&b, "  %-40s cuts at %v\n", d.Path, d.Cuts)
		}
	}
	return b.String()
}
