package temporal

import (
	"math"
	"math/rand"
	"testing"

	"ocelotl/internal/exhaustive"
	"ocelotl/internal/hierarchy"
	"ocelotl/internal/measures"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/timeslice"
)

func randomModel(t *testing.T, seed int64, nRes, T int) *microscopic.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	paths := make([]string, nRes)
	for i := range paths {
		paths[i] = "g/p" + string(rune('0'+i))
	}
	h, err := hierarchy.FromPaths(paths)
	if err != nil {
		t.Fatal(err)
	}
	sl, _ := timeslice.New(0, float64(T), T)
	m := microscopic.NewEmpty(h, sl, []string{"u", "v"})
	for s := 0; s < nRes; s++ {
		for ti := 0; ti < T; ti++ {
			a := rng.Float64()
			m.AddD(0, s, ti, a)
			m.AddD(1, s, ti, rng.Float64()*(1-a))
		}
	}
	return m
}

func TestDPAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		m := randomModel(t, seed, 3, 7)
		agg := New(m)
		for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
			pt, err := agg.Run(p)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := exhaustive.BestTemporal(m.NumSlices(), func(i, j int) float64 {
				g, l := agg.IntervalGainLoss(i, j)
				return measures.PIC(p, g, l)
			})
			if math.Abs(pt.PIC-want) > 1e-9*(1+math.Abs(want)) {
				t.Errorf("seed %d p=%v: DP %.12f, brute force %.12f", seed, p, pt.PIC, want)
			}
		}
	}
}

func TestPartitionCoversTimeline(t *testing.T) {
	m := randomModel(t, 3, 4, 9)
	pt, err := New(m).Run(0.4)
	if err != nil {
		t.Fatal(err)
	}
	covered := make([]bool, m.NumSlices())
	for _, a := range pt.Areas {
		if a.Node != m.H.Root {
			t.Errorf("temporal-only area %v is not rooted", a)
		}
		for ti := a.I; ti <= a.J; ti++ {
			if covered[ti] {
				t.Fatalf("slice %d covered twice", ti)
			}
			covered[ti] = true
		}
	}
	for ti, c := range covered {
		if !c {
			t.Errorf("slice %d uncovered", ti)
		}
	}
}

func TestHomogeneousTimelineAggregates(t *testing.T) {
	h, _ := hierarchy.FromPaths([]string{"g/a", "g/b"})
	sl, _ := timeslice.New(0, 6, 6)
	m := microscopic.NewEmpty(h, sl, []string{"u"})
	for s := 0; s < 2; s++ {
		for ti := 0; ti < 6; ti++ {
			m.AddD(0, s, ti, 0.5)
		}
	}
	pt, err := New(m).Run(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Areas) != 1 {
		t.Errorf("homogeneous timeline split into %d intervals", len(pt.Areas))
	}
}

func TestPhaseChangeDetected(t *testing.T) {
	// Two clear phases (busy then idle): at low p the DP must cut at the
	// transition.
	h, _ := hierarchy.FromPaths([]string{"g/a", "g/b"})
	sl, _ := timeslice.New(0, 8, 8)
	m := microscopic.NewEmpty(h, sl, []string{"u"})
	for s := 0; s < 2; s++ {
		for ti := 0; ti < 4; ti++ {
			m.AddD(0, s, ti, 0.9)
		}
		for ti := 4; ti < 8; ti++ {
			m.AddD(0, s, ti, 0.1)
		}
	}
	intervals, err := New(m).Intervals(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(intervals) != 2 {
		t.Fatalf("got %d intervals %v, want 2", len(intervals), intervals)
	}
	if intervals[0] != [2]int{0, 3} || intervals[1] != [2]int{4, 7} {
		t.Errorf("intervals = %v, want [[0 3] [4 7]]", intervals)
	}
}

func TestIntervalGainLossSymmetryWithSingleSlice(t *testing.T) {
	m := randomModel(t, 11, 3, 5)
	agg := New(m)
	for ti := 0; ti < 5; ti++ {
		g, l := agg.IntervalGainLoss(ti, ti)
		if math.Abs(g) > 1e-12 || math.Abs(l) > 1e-12 {
			t.Errorf("singleton interval %d: gain=%g loss=%g, want 0,0", ti, g, l)
		}
	}
}

func TestLossNonNegative(t *testing.T) {
	m := randomModel(t, 17, 4, 6)
	agg := New(m)
	for i := 0; i < 6; i++ {
		for j := i; j < 6; j++ {
			if _, l := agg.IntervalGainLoss(i, j); l < -1e-9 {
				t.Errorf("interval [%d,%d] has negative loss %g", i, j, l)
			}
		}
	}
}

func TestRejectsBadP(t *testing.T) {
	m := randomModel(t, 19, 2, 3)
	agg := New(m)
	for _, p := range []float64{-0.5, 1.5, math.NaN()} {
		if _, err := agg.Run(p); err == nil {
			t.Errorf("Run(%v) accepted", p)
		}
	}
}

func TestBestPIC(t *testing.T) {
	m := randomModel(t, 23, 3, 5)
	agg := New(m)
	pt, _ := agg.Run(0.6)
	if got := agg.BestPIC(0.6); math.Abs(got-pt.PIC) > 1e-12 {
		t.Errorf("BestPIC = %g, Run PIC = %g", got, pt.PIC)
	}
}
