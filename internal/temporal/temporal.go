// Package temporal implements the temporal-only aggregation baseline
// (paper §III.D, the 1-D Ocelotl technique [11][12]): the optimal
// order-consistent partition of the spatially-averaged trace {S}×T,
// computed by dynamic programming in O(|T|²) pIC evaluations — the optimal
// interval-partitioning scheme of Jackson et al. [20].
//
// Each microscopic individual is one slice with its resource-averaged state
// proportions ρ_x(S, {t}); each candidate aggregate is an interval T_(i,j).
package temporal

import (
	"fmt"
	"math"

	"ocelotl/internal/measures"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/partition"
)

// Aggregator precomputes prefix sums for the spatially-averaged trace so
// any interval's gain/loss is O(|X|).
type Aggregator struct {
	Model *microscopic.Model
	T, X  int

	prefD   [][]float64 // prefD[x][t]  = Σ_{t'<t} Σ_s d_x(s,t')
	prefRho [][]float64 // prefRho[x][t]= Σ_{t'<t} ρ_x(S,{t'})
	prefRL  [][]float64 // prefRL[x][t] = Σ_{t'<t} ρ·log₂ρ
	durPref []float64
}

// New builds the prefix sums in O(|X|·|S|·|T|).
func New(m *microscopic.Model) *Aggregator {
	T, X := m.NumSlices(), m.NumStates()
	a := &Aggregator{Model: m, T: T, X: X,
		prefD:   make([][]float64, X),
		prefRho: make([][]float64, X),
		prefRL:  make([][]float64, X),
		durPref: make([]float64, T+1),
	}
	for t := 0; t < T; t++ {
		a.durPref[t+1] = a.durPref[t] + m.SliceDur[t]
	}
	n := m.NumResources()
	for x := 0; x < X; x++ {
		a.prefD[x] = make([]float64, T+1)
		a.prefRho[x] = make([]float64, T+1)
		a.prefRL[x] = make([]float64, T+1)
		row := m.StateRow(x)
		for t := 0; t < T; t++ {
			var d float64
			for s := 0; s < n; s++ {
				d += row[s*T+t]
			}
			rho := 0.0
			if sd := m.SliceDur[t]; sd > 0 {
				rho = d / (float64(n) * sd)
			}
			a.prefD[x][t+1] = a.prefD[x][t] + d
			a.prefRho[x][t+1] = a.prefRho[x][t] + rho
			a.prefRL[x][t+1] = a.prefRL[x][t] + measures.PLogP(rho)
		}
	}
	return a
}

// IntervalGainLoss returns the gain and loss of aggregating slices [i, j]
// of the spatially-averaged trace (the microscopic individuals being the
// single slices).
func (a *Aggregator) IntervalGainLoss(i, j int) (gain, loss float64) {
	dur := a.durPref[j+1] - a.durPref[i]
	n := a.Model.NumResources()
	for x := 0; x < a.X; x++ {
		sums := measures.AreaSums{
			SumD:         a.prefD[x][j+1] - a.prefD[x][i],
			SumRho:       a.prefRho[x][j+1] - a.prefRho[x][i],
			SumRhoLogRho: a.prefRL[x][j+1] - a.prefRL[x][i],
			// The spatially-averaged trace has one "resource" (the
			// whole set S); SumD still counts all |S| resources'
			// seconds, so the effective size is |S|.
			Size:     n,
			Duration: dur,
		}
		gain += sums.Gain()
		loss += sums.Loss()
	}
	return gain, loss
}

// Run returns the optimal order-consistent partition at ratio p via the
// classic O(|T|²) DP: OPT(j) = max_{i ≤ j} OPT(i−1) + pIC(i, j). Ties favor
// the longest aggregate ending at j (i.e. the earliest i), which mirrors
// Algorithm 1's preference for aggregation.
func (a *Aggregator) Run(p float64) (*partition.Partition, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("temporal: p = %v out of [0,1]", p)
	}
	T := a.T
	opt := make([]float64, T+1) // opt[k] = best pIC of slices [0,k)
	cut := make([]int, T+1)     // start of the last interval in the best split of [0,k)
	for j := 0; j < T; j++ {
		best := math.Inf(-1)
		bestI := 0
		for i := 0; i <= j; i++ {
			g, l := a.IntervalGainLoss(i, j)
			v := opt[i] + measures.PIC(p, g, l)
			// A strict noise-tolerant comparison keeps the earliest
			// i, i.e. the most aggregated alternative, on ties.
			if measures.Improves(v, best) {
				best, bestI = v, i
			}
		}
		opt[j+1], cut[j+1] = best, bestI
	}
	pt := &partition.Partition{P: p}
	root := a.Model.H.Root
	for k := T; k > 0; {
		i := cut[k]
		g, l := a.IntervalGainLoss(i, k-1)
		pt.Areas = append(pt.Areas, partition.Area{Node: root, I: i, J: k - 1})
		pt.Gain += g
		pt.Loss += l
		k = i
	}
	pt.PIC = measures.PIC(p, pt.Gain, pt.Loss)
	pt.Sort()
	return pt, nil
}

// Intervals returns just the (i, j) interval bounds of the optimal
// temporal partition at p, ordered by time.
func (a *Aggregator) Intervals(p float64) ([][2]int, error) {
	pt, err := a.Run(p)
	if err != nil {
		return nil, err
	}
	out := make([][2]int, len(pt.Areas))
	for i, ar := range pt.Areas {
		out[i] = [2]int{ar.I, ar.J}
	}
	return out, nil
}

// BestPIC returns the optimal total pIC at p without materializing the
// partition (used by tests against brute force).
func (a *Aggregator) BestPIC(p float64) float64 {
	pt, err := a.Run(p)
	if err != nil {
		return math.NaN()
	}
	return pt.PIC
}
