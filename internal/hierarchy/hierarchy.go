// Package hierarchy implements the spatial dimension of the trace model
// (paper §III.A(1)): the resource set S structured by the platform
// hierarchy H(S).
//
// Formally H(S) is a set of subsets of S containing S itself and every
// singleton, such that any two parts are disjoint or nested. It is
// equivalent to a rooted tree whose leaves are the singletons; this package
// stores that tree. Leaves are assigned contiguous indices in depth-first
// order, so every node covers the index range [Lo, Hi) — which is what lets
// the aggregation algorithms address "the resources below node k" in O(1).
package hierarchy

import (
	"fmt"
	"sort"
	"strings"
)

// Node is one part S_k of the hierarchy: an inner node (a cluster, a
// machine…) or a leaf (a single resource).
type Node struct {
	// Name is the last path component ("parapide-3").
	Name string
	// Path is the full slash-separated path from the root's child level
	// ("rennes/parapide/parapide-3"). The root has path "".
	Path string
	// Children are the immediate sub-parts, in insertion order. Empty for
	// leaves.
	Children []*Node
	// Parent is nil for the root.
	Parent *Node
	// Lo and Hi delimit the half-open range of leaf indices covered by
	// this node. For a leaf, Hi == Lo+1.
	Lo, Hi int
	// Depth is 0 for the root.
	Depth int
	// ID is the node's index in Hierarchy.Nodes (DFS pre-order).
	ID int
}

// IsLeaf reports whether the node is a singleton part {s}.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Size returns |S_k|, the number of underlying resources.
func (n *Node) Size() int { return n.Hi - n.Lo }

// Contains reports whether other's leaf range is nested inside n's.
func (n *Node) Contains(other *Node) bool { return n.Lo <= other.Lo && other.Hi <= n.Hi }

// Walk calls fn on n and every descendant in pre-order. Returning false
// from fn prunes the subtree.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Hierarchy is the full platform hierarchy: the rooted tree over S.
type Hierarchy struct {
	Root *Node
	// Leaves holds the leaf nodes in index order; Leaves[i].Lo == i.
	Leaves []*Node
	// Nodes holds every node in DFS pre-order; Nodes[n.ID] == n.
	Nodes []*Node
	// ByPath maps full paths to nodes ("" is the root).
	ByPath map[string]*Node
	// ResourcePaths maps leaf index to the leaf's full path, i.e. the
	// resource table in hierarchy order.
	ResourcePaths []string
}

// NumLeaves returns |S|.
func (h *Hierarchy) NumLeaves() int { return len(h.Leaves) }

// NumNodes returns |H(S)|, the number of parts in the hierarchy.
func (h *Hierarchy) NumNodes() int { return len(h.Nodes) }

// Depth returns the maximum node depth (root = 0).
func (h *Hierarchy) Depth() int {
	max := 0
	for _, n := range h.Nodes {
		if n.Depth > max {
			max = n.Depth
		}
	}
	return max
}

// FromPaths builds a hierarchy from slash-separated resource paths: each
// path becomes a leaf; intermediate components become inner nodes. Sibling
// order follows first appearance in the input, so generators control layout
// deterministically. Leaf indices are assigned in DFS order, which means
// resources of the same machine/cluster are contiguous even if the input
// interleaves them.
//
// Duplicate paths and paths that are prefixes of other paths (a resource
// that is also a group) are rejected.
func FromPaths(paths []string) (*Hierarchy, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("hierarchy: no resources")
	}
	root := &Node{Name: "", Path: ""}
	index := map[string]*Node{"": root}
	for _, p := range paths {
		if p == "" {
			return nil, fmt.Errorf("hierarchy: empty resource path")
		}
		if _, dup := index[p]; dup {
			return nil, fmt.Errorf("hierarchy: duplicate resource path %q", p)
		}
		parts := strings.Split(p, "/")
		cur := root
		for i, part := range parts {
			if part == "" {
				return nil, fmt.Errorf("hierarchy: path %q has an empty component", p)
			}
			full := strings.Join(parts[:i+1], "/")
			next, ok := index[full]
			if !ok {
				next = &Node{Name: part, Path: full, Parent: cur, Depth: cur.Depth + 1}
				cur.Children = append(cur.Children, next)
				index[full] = next
			}
			cur = next
		}
	}
	// Every indexed path that is also a declared resource must be a leaf.
	declared := make(map[string]bool, len(paths))
	for _, p := range paths {
		declared[p] = true
	}
	for p, n := range index {
		if declared[p] && len(n.Children) > 0 {
			return nil, fmt.Errorf("hierarchy: resource %q is also a group of %d resources", p, len(n.Children))
		}
	}
	h := &Hierarchy{Root: root, ByPath: index}
	h.finalize()
	return h, nil
}

// FromFlat builds a single-level hierarchy (root with one leaf per name).
// Useful for traces with no topological information.
func FromFlat(names []string) (*Hierarchy, error) {
	clean := make([]string, len(names))
	for i, n := range names {
		clean[i] = strings.ReplaceAll(n, "/", "_")
	}
	return FromPaths(clean)
}

// finalize assigns leaf ranges, node IDs and lookup tables by one DFS pass.
func (h *Hierarchy) finalize() {
	h.Leaves = h.Leaves[:0]
	h.Nodes = h.Nodes[:0]
	var dfs func(n *Node)
	leaf := 0
	dfs = func(n *Node) {
		n.ID = len(h.Nodes)
		h.Nodes = append(h.Nodes, n)
		if n.IsLeaf() {
			n.Lo, n.Hi = leaf, leaf+1
			leaf++
			h.Leaves = append(h.Leaves, n)
			return
		}
		n.Lo = leaf
		for _, c := range n.Children {
			dfs(c)
		}
		n.Hi = leaf
	}
	dfs(h.Root)
	h.ResourcePaths = make([]string, len(h.Leaves))
	for i, l := range h.Leaves {
		h.ResourcePaths[i] = l.Path
	}
}

// Validate checks the hierarchy axioms of §III.A(1): the root covers the
// whole set, children of each node are pairwise disjoint and tile their
// parent exactly, leaf indices are contiguous, and parent/depth links are
// coherent. It is primarily used by tests and by readers of untrusted
// topology descriptions.
func (h *Hierarchy) Validate() error {
	if h.Root == nil {
		return fmt.Errorf("hierarchy: nil root")
	}
	if h.Root.Lo != 0 || h.Root.Hi != len(h.Leaves) {
		return fmt.Errorf("hierarchy: root covers [%d,%d), want [0,%d)", h.Root.Lo, h.Root.Hi, len(h.Leaves))
	}
	var err error
	h.Root.Walk(func(n *Node) bool {
		if n.Hi <= n.Lo {
			err = fmt.Errorf("hierarchy: node %q has empty range [%d,%d)", n.Path, n.Lo, n.Hi)
			return false
		}
		if n.IsLeaf() {
			if n.Hi != n.Lo+1 {
				err = fmt.Errorf("hierarchy: leaf %q has range [%d,%d)", n.Path, n.Lo, n.Hi)
				return false
			}
			if h.Leaves[n.Lo] != n {
				err = fmt.Errorf("hierarchy: leaf table mismatch at %d", n.Lo)
				return false
			}
			return true
		}
		at := n.Lo
		for _, c := range n.Children {
			if c.Parent != n {
				err = fmt.Errorf("hierarchy: %q has wrong parent link", c.Path)
				return false
			}
			if c.Depth != n.Depth+1 {
				err = fmt.Errorf("hierarchy: %q depth %d under depth %d", c.Path, c.Depth, n.Depth)
				return false
			}
			if c.Lo != at {
				err = fmt.Errorf("hierarchy: gap before %q: child starts at %d, want %d", c.Path, c.Lo, at)
				return false
			}
			at = c.Hi
		}
		if at != n.Hi {
			err = fmt.Errorf("hierarchy: children of %q tile [%d,%d), node covers [%d,%d)", n.Path, n.Lo, at, n.Lo, n.Hi)
			return false
		}
		return true
	})
	return err
}

// LeafIndex returns the leaf index of the resource with the given path, or
// -1 if absent or not a leaf.
func (h *Hierarchy) LeafIndex(path string) int {
	n, ok := h.ByPath[path]
	if !ok || !n.IsLeaf() {
		return -1
	}
	return n.Lo
}

// Ancestors returns the chain from n's parent up to the root.
func Ancestors(n *Node) []*Node {
	var out []*Node
	for p := n.Parent; p != nil; p = p.Parent {
		out = append(out, p)
	}
	return out
}

// LowestCommonAncestor returns the deepest node containing both a and b.
func (h *Hierarchy) LowestCommonAncestor(a, b *Node) *Node {
	for !a.Contains(b) {
		a = a.Parent
	}
	_ = b
	return a
}

// CountAtDepth returns the number of nodes at each depth level.
func (h *Hierarchy) CountAtDepth() []int {
	out := make([]int, h.Depth()+1)
	for _, n := range h.Nodes {
		out[n.Depth]++
	}
	return out
}

// String renders a compact multi-line view of the tree (for debugging and
// golden tests).
func (h *Hierarchy) String() string {
	var b strings.Builder
	h.Root.Walk(func(n *Node) bool {
		fmt.Fprintf(&b, "%s%s [%d,%d)\n", strings.Repeat("  ", n.Depth), nodeLabel(n), n.Lo, n.Hi)
		return true
	})
	return b.String()
}

func nodeLabel(n *Node) string {
	if n.Path == "" {
		return "<root>"
	}
	return n.Name
}

// SortChildren orders every node's children lexicographically by name.
// Builders that want canonical layout regardless of input order call this
// before finalization is re-run.
func (h *Hierarchy) SortChildren() {
	h.Root.Walk(func(n *Node) bool {
		sort.Slice(n.Children, func(i, j int) bool { return n.Children[i].Name < n.Children[j].Name })
		return true
	})
	h.finalize()
	for p := range h.ByPath {
		delete(h.ByPath, p)
	}
	h.Root.Walk(func(n *Node) bool { h.ByPath[n.Path] = n; return true })
}
