package hierarchy

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustBuild(t *testing.T, paths []string) *Hierarchy {
	t.Helper()
	h, err := FromPaths(paths)
	if err != nil {
		t.Fatalf("FromPaths(%v): %v", paths, err)
	}
	return h
}

func TestFromPathsBasic(t *testing.T) {
	h := mustBuild(t, []string{"A/a0", "A/a1", "B/b0"})
	if got := h.NumLeaves(); got != 3 {
		t.Errorf("NumLeaves = %d, want 3", got)
	}
	if got := h.NumNodes(); got != 6 { // root + A + B + 3 leaves
		t.Errorf("NumNodes = %d, want 6", got)
	}
	if err := h.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	a := h.ByPath["A"]
	if a == nil || a.Lo != 0 || a.Hi != 2 {
		t.Errorf("node A covers %v", a)
	}
	if h.LeafIndex("B/b0") != 2 {
		t.Errorf("LeafIndex(B/b0) = %d, want 2", h.LeafIndex("B/b0"))
	}
}

func TestFromPathsInterleavedInputStaysContiguous(t *testing.T) {
	// Resources of the same group arrive interleaved; leaf ranges must
	// still be contiguous per group.
	h := mustBuild(t, []string{"A/a0", "B/b0", "A/a1", "B/b1", "A/a2"})
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	a, b := h.ByPath["A"], h.ByPath["B"]
	if a.Size() != 3 || b.Size() != 2 {
		t.Errorf("sizes: A=%d B=%d, want 3, 2", a.Size(), b.Size())
	}
	if a.Hi != b.Lo && b.Hi != a.Lo {
		t.Errorf("groups not contiguous: A=[%d,%d) B=[%d,%d)", a.Lo, a.Hi, b.Lo, b.Hi)
	}
}

func TestFromPathsRejectsBadInput(t *testing.T) {
	cases := [][]string{
		nil,
		{""},
		{"a", "a"},
		{"a/b", "a"},        // a is both group and resource
		{"a", "a/b"},        // same, other order
		{"x//y"},            // empty component
		{"ok", "also//bad"}, // empty component later
	}
	for _, paths := range cases {
		if _, err := FromPaths(paths); err == nil {
			t.Errorf("FromPaths(%v) succeeded, want error", paths)
		}
	}
}

func TestFromFlat(t *testing.T) {
	h, err := FromFlat([]string{"p0", "p/1", "p2"})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumLeaves() != 3 || h.Depth() != 1 {
		t.Errorf("flat hierarchy: %d leaves depth %d", h.NumLeaves(), h.Depth())
	}
}

func TestSingleResource(t *testing.T) {
	h := mustBuild(t, []string{"only"})
	if h.NumLeaves() != 1 || h.NumNodes() != 2 {
		t.Errorf("leaves=%d nodes=%d", h.NumLeaves(), h.NumNodes())
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDeepChain(t *testing.T) {
	h := mustBuild(t, []string{"a/b/c/d/e"})
	if h.Depth() != 5 {
		t.Errorf("Depth = %d, want 5", h.Depth())
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestWalkOrderAndIDs(t *testing.T) {
	h := mustBuild(t, []string{"A/a0", "A/a1", "B/b0"})
	var order []string
	h.Root.Walk(func(n *Node) bool {
		order = append(order, n.Path)
		if h.Nodes[n.ID] != n {
			t.Errorf("node %q has wrong ID %d", n.Path, n.ID)
		}
		return true
	})
	want := []string{"", "A", "A/a0", "A/a1", "B", "B/b0"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Errorf("walk order %v, want %v", order, want)
	}
}

func TestWalkPrune(t *testing.T) {
	h := mustBuild(t, []string{"A/a0", "A/a1", "B/b0"})
	var visited []string
	h.Root.Walk(func(n *Node) bool {
		visited = append(visited, n.Path)
		return n.Path != "A" // prune below A
	})
	for _, p := range visited {
		if p == "A/a0" || p == "A/a1" {
			t.Errorf("visited %q under pruned subtree", p)
		}
	}
}

func TestContainsAndLCA(t *testing.T) {
	h := mustBuild(t, []string{"A/m0/c0", "A/m0/c1", "A/m1/c0", "B/m2/c0"})
	a := h.ByPath["A"]
	m0 := h.ByPath["A/m0"]
	c0 := h.ByPath["A/m0/c0"]
	bm := h.ByPath["B/m2/c0"]
	if !a.Contains(c0) || c0.Contains(a) {
		t.Error("Contains relation wrong for A vs A/m0/c0")
	}
	if got := h.LowestCommonAncestor(c0, h.ByPath["A/m0/c1"]); got != m0 {
		t.Errorf("LCA = %q, want A/m0", got.Path)
	}
	if got := h.LowestCommonAncestor(c0, bm); got != h.Root {
		t.Errorf("LCA across clusters = %q, want root", got.Path)
	}
}

func TestAncestors(t *testing.T) {
	h := mustBuild(t, []string{"A/m0/c0", "B/x"})
	c0 := h.ByPath["A/m0/c0"]
	anc := Ancestors(c0)
	if len(anc) != 3 || anc[0].Path != "A/m0" || anc[1].Path != "A" || anc[2] != h.Root {
		t.Errorf("Ancestors = %v", anc)
	}
}

func TestCountAtDepth(t *testing.T) {
	h := mustBuild(t, []string{"A/a0", "A/a1", "B/b0", "B/b1", "B/b2"})
	got := h.CountAtDepth()
	want := []int{1, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("CountAtDepth = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("depth %d: %d nodes, want %d", i, got[i], want[i])
		}
	}
}

func TestSortChildren(t *testing.T) {
	h := mustBuild(t, []string{"B/b0", "A/a1", "A/a0"})
	h.SortChildren()
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate after sort: %v", err)
	}
	if h.Root.Children[0].Name != "A" || h.Root.Children[1].Name != "B" {
		t.Errorf("children not sorted: %v, %v", h.Root.Children[0].Name, h.Root.Children[1].Name)
	}
	if h.LeafIndex("A/a0") != 0 || h.LeafIndex("A/a1") != 1 || h.LeafIndex("B/b0") != 2 {
		t.Error("leaf indices not reassigned after sort")
	}
}

// TestHierarchyAxiomsProperty checks the §III.A(1) axioms on randomly
// generated hierarchies: any two parts are disjoint or nested, the root is
// the whole set, singletons are the leaves.
func TestHierarchyAxiomsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		paths := randomPaths(rng)
		h, err := FromPaths(paths)
		if err != nil {
			return false
		}
		if h.Validate() != nil {
			return false
		}
		// Pairwise: disjoint or nested.
		for _, a := range h.Nodes {
			for _, b := range h.Nodes {
				disjoint := a.Hi <= b.Lo || b.Hi <= a.Lo
				nested := a.Contains(b) || b.Contains(a)
				if !disjoint && !nested {
					return false
				}
			}
		}
		// Leaves are exactly the singletons, in index order.
		for i, l := range h.Leaves {
			if !l.IsLeaf() || l.Lo != i || l.Size() != 1 {
				return false
			}
		}
		return h.Root.Size() == len(paths)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// randomPaths generates a random 2- or 3-level platform layout.
func randomPaths(rng *rand.Rand) []string {
	var paths []string
	clusters := 1 + rng.Intn(4)
	for c := 0; c < clusters; c++ {
		machines := 1 + rng.Intn(4)
		for m := 0; m < machines; m++ {
			cores := 1 + rng.Intn(4)
			for k := 0; k < cores; k++ {
				paths = append(paths, pathName(c, m, k))
			}
		}
	}
	// Shuffle to exercise interleaved input.
	rng.Shuffle(len(paths), func(i, j int) { paths[i], paths[j] = paths[j], paths[i] })
	return paths
}

func pathName(c, m, k int) string {
	return "c" + string(rune('0'+c)) + "/m" + string(rune('0'+m)) + "/p" + string(rune('0'+k))
}

func TestStringRendering(t *testing.T) {
	h := mustBuild(t, []string{"A/a0", "B/b0"})
	s := h.String()
	for _, want := range []string{"<root>", "A", "a0", "B", "b0"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
