package trace

import (
	"math"
	"testing"
)

func sample() *Trace {
	tr := New([]string{"A/a0", "A/a1"}, []string{"run", "wait"})
	tr.Add(0, 0, 0, 2)
	tr.Add(0, 1, 2, 3)
	tr.Add(1, 0, 0.5, 2.5)
	return tr
}

func TestBasicAccessors(t *testing.T) {
	tr := sample()
	if tr.NumResources() != 2 || tr.NumStates() != 2 || tr.NumEvents() != 3 {
		t.Errorf("dims = (%d,%d,%d)", tr.NumResources(), tr.NumStates(), tr.NumEvents())
	}
}

func TestWindowDerived(t *testing.T) {
	tr := sample()
	s, e := tr.Window()
	if s != 0 || e != 3 {
		t.Errorf("Window = (%g,%g), want (0,3)", s, e)
	}
}

func TestWindowExplicit(t *testing.T) {
	tr := sample()
	tr.Start, tr.End = -1, 10
	s, e := tr.Window()
	if s != -1 || e != 10 {
		t.Errorf("Window = (%g,%g), want (-1,10)", s, e)
	}
}

func TestWindowEmpty(t *testing.T) {
	tr := New(nil, nil)
	s, e := tr.Window()
	if s != 0 || e != 0 {
		t.Errorf("empty Window = (%g,%g)", s, e)
	}
}

func TestEventValid(t *testing.T) {
	good := Event{Resource: 0, State: 0, Start: 1, End: 2}
	if !good.Valid() {
		t.Error("good event rejected")
	}
	bad := []Event{
		{Resource: -1, State: 0, Start: 0, End: 1},
		{Resource: 0, State: -1, Start: 0, End: 1},
		{Resource: 0, State: 0, Start: 2, End: 1},
		{Resource: 0, State: 0, Start: math.NaN(), End: 1},
		{Resource: 0, State: 0, Start: 0, End: math.Inf(1)},
	}
	for i, e := range bad {
		if e.Valid() {
			t.Errorf("bad event %d accepted: %+v", i, e)
		}
	}
}

func TestValidate(t *testing.T) {
	tr := sample()
	if err := tr.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	tr.Add(5, 0, 0, 1) // unknown resource
	if err := tr.Validate(); err == nil {
		t.Error("unknown resource accepted")
	}
	tr = sample()
	tr.Add(0, 9, 0, 1) // unknown state
	if err := tr.Validate(); err == nil {
		t.Error("unknown state accepted")
	}
	tr = sample()
	tr.Start, tr.End = 0, 1 // events outside explicit window
	if err := tr.Validate(); err == nil {
		t.Error("out-of-window event accepted")
	}
}

func TestSort(t *testing.T) {
	tr := New([]string{"r"}, []string{"x"})
	tr.Add(0, 0, 5, 6)
	tr.Add(0, 0, 1, 2)
	tr.Add(0, 0, 3, 4)
	tr.Sort()
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Start < tr.Events[i-1].Start {
			t.Fatalf("not sorted: %v", tr.Events)
		}
	}
}

func TestStateAndResourceIndex(t *testing.T) {
	tr := New(nil, nil)
	a := tr.StateIndex("wait")
	b := tr.StateIndex("run")
	if a2 := tr.StateIndex("wait"); a2 != a {
		t.Errorf("StateIndex not idempotent: %d vs %d", a, a2)
	}
	if a == b {
		t.Error("distinct states share an index")
	}
	r := tr.ResourceIndex("c/m/p")
	if r2 := tr.ResourceIndex("c/m/p"); r2 != r {
		t.Error("ResourceIndex not idempotent")
	}
	if tr.NumStates() != 2 || tr.NumResources() != 1 {
		t.Errorf("tables: %d states, %d resources", tr.NumStates(), tr.NumResources())
	}
}

func TestComputeStats(t *testing.T) {
	tr := sample()
	st := tr.ComputeStats()
	if st.Events != 3 {
		t.Errorf("Events = %d", st.Events)
	}
	if math.Abs(st.BusyTime-5) > 1e-12 { // 2 + 1 + 2
		t.Errorf("BusyTime = %g, want 5", st.BusyTime)
	}
	if st.PerState[0].Count != 2 || math.Abs(st.PerState[0].Duration-4) > 1e-12 {
		t.Errorf("state run: %+v", st.PerState[0])
	}
	if st.PerState[1].Count != 1 || math.Abs(st.PerState[1].Duration-1) > 1e-12 {
		t.Errorf("state wait: %+v", st.PerState[1])
	}
	if math.Abs(st.MeanEventSpan-5.0/3) > 1e-12 {
		t.Errorf("MeanEventSpan = %g", st.MeanEventSpan)
	}
}

func TestClone(t *testing.T) {
	tr := sample()
	cp := tr.Clone()
	cp.Add(0, 0, 9, 10)
	cp.Resources[0] = "changed"
	if tr.NumEvents() != 3 || tr.Resources[0] != "A/a0" {
		t.Error("Clone shares storage with original")
	}
}

func TestSlice(t *testing.T) {
	tr := sample()
	sub := tr.Slice(1, 2.5)
	if sub.Start != 1 || sub.End != 2.5 {
		t.Errorf("window = (%g,%g)", sub.Start, sub.End)
	}
	// Events: [0,2)→[1,2), [2,3)→[2,2.5), [0.5,2.5)→[1,2.5)
	if len(sub.Events) != 3 {
		t.Fatalf("got %d events: %v", len(sub.Events), sub.Events)
	}
	for _, e := range sub.Events {
		if e.Start < 1 || e.End > 2.5 {
			t.Errorf("event not clipped: %+v", e)
		}
	}
	empty := tr.Slice(100, 200)
	if len(empty.Events) != 0 {
		t.Errorf("out-of-range slice has %d events", len(empty.Events))
	}
}
