// Package trace defines the raw execution-trace model used throughout the
// library: timestamped state events produced by hierarchical resources.
//
// A trace, in the sense of the paper (§III.A), is a set of *states*: a state
// is a timestamped event with a start and an end, associated with the
// resource that produced it (a process bound to a core) and with a value
// drawn from the state alphabet X (e.g. MPI_Send, MPI_Wait, compute).
package trace

import (
	"fmt"
	"math"
	"sort"
)

// ResourceID identifies a resource (a leaf of the platform hierarchy) by its
// index in the trace resource table.
type ResourceID int32

// StateID identifies a state value by its index in the trace state table.
type StateID int32

// Event is one state occurrence: resource Resource was in state State during
// [Start, End). Times are seconds from an arbitrary origin.
type Event struct {
	Resource ResourceID
	State    StateID
	Start    float64
	End      float64
}

// Duration returns the time extent of the event.
func (e Event) Duration() float64 { return e.End - e.Start }

// Valid reports whether the event is well-formed: non-negative IDs and a
// non-inverted time interval.
func (e Event) Valid() bool {
	return e.Resource >= 0 && e.State >= 0 && e.End >= e.Start &&
		!math.IsNaN(e.Start) && !math.IsNaN(e.End) &&
		!math.IsInf(e.Start, 0) && !math.IsInf(e.End, 0)
}

// Trace is an in-memory execution trace. Resources are named by
// slash-separated hierarchical paths (e.g. "rennes/parapide/parapide-1/p3")
// so that the platform hierarchy can be rebuilt from the resource table
// alone. For very large traces, prefer the streaming interfaces in
// package traceio; Trace is the convenient container for generation,
// testing and small analyses.
type Trace struct {
	// Resources maps ResourceID to hierarchical path.
	Resources []string
	// States maps StateID to state name.
	States []string
	// Events holds the state occurrences, in no particular order unless
	// Sort has been called.
	Events []Event
	// Start and End delimit the observation window. Zero values mean
	// "derive from events" (see Window).
	Start, End float64
}

// New returns an empty trace with the given resource and state tables.
func New(resources, states []string) *Trace {
	return &Trace{Resources: resources, States: states}
}

// NumResources returns the size of the spatial dimension |S|.
func (tr *Trace) NumResources() int { return len(tr.Resources) }

// NumStates returns the size of the state dimension |X|.
func (tr *Trace) NumStates() int { return len(tr.States) }

// NumEvents returns the number of recorded state occurrences.
func (tr *Trace) NumEvents() int { return len(tr.Events) }

// Add appends an event.
func (tr *Trace) Add(r ResourceID, x StateID, start, end float64) {
	tr.Events = append(tr.Events, Event{Resource: r, State: x, Start: start, End: end})
}

// AddEvent appends a prebuilt event.
func (tr *Trace) AddEvent(e Event) { tr.Events = append(tr.Events, e) }

// Window returns the observation window. If Start==End==0 it is derived
// from the events (min start, max end); an empty trace yields (0, 0).
func (tr *Trace) Window() (start, end float64) {
	if tr.Start != 0 || tr.End != 0 {
		return tr.Start, tr.End
	}
	if len(tr.Events) == 0 {
		return 0, 0
	}
	start, end = math.Inf(1), math.Inf(-1)
	for _, e := range tr.Events {
		if e.Start < start {
			start = e.Start
		}
		if e.End > end {
			end = e.End
		}
	}
	return start, end
}

// Sort orders events by (Start, Resource, End). Readers and generators are
// not required to produce sorted traces; sorting makes textual output and
// some analyses deterministic.
func (tr *Trace) Sort() {
	sort.Slice(tr.Events, func(a, b int) bool {
		ea, eb := tr.Events[a], tr.Events[b]
		if ea.Start != eb.Start {
			return ea.Start < eb.Start
		}
		if ea.Resource != eb.Resource {
			return ea.Resource < eb.Resource
		}
		return ea.End < eb.End
	})
}

// Validate checks the structural integrity of the trace: every event
// references existing resources and states and has a well-formed interval
// inside the observation window (when one is set explicitly).
func (tr *Trace) Validate() error {
	ws, we := tr.Window()
	explicit := tr.Start != 0 || tr.End != 0
	for i, e := range tr.Events {
		if !e.Valid() {
			return fmt.Errorf("trace: event %d is malformed: %+v", i, e)
		}
		if int(e.Resource) >= len(tr.Resources) {
			return fmt.Errorf("trace: event %d references unknown resource %d (have %d)", i, e.Resource, len(tr.Resources))
		}
		if int(e.State) >= len(tr.States) {
			return fmt.Errorf("trace: event %d references unknown state %d (have %d)", i, e.State, len(tr.States))
		}
		if explicit && (e.Start < ws || e.End > we) {
			return fmt.Errorf("trace: event %d [%g,%g) outside window [%g,%g)", i, e.Start, e.End, ws, we)
		}
	}
	return nil
}

// StateIndex returns the StateID for name, creating it if absent.
func (tr *Trace) StateIndex(name string) StateID {
	for i, s := range tr.States {
		if s == name {
			return StateID(i)
		}
	}
	tr.States = append(tr.States, name)
	return StateID(len(tr.States) - 1)
}

// ResourceIndex returns the ResourceID for path, creating it if absent.
func (tr *Trace) ResourceIndex(path string) ResourceID {
	for i, s := range tr.Resources {
		if s == path {
			return ResourceID(i)
		}
	}
	tr.Resources = append(tr.Resources, path)
	return ResourceID(len(tr.Resources) - 1)
}

// Stats summarises a trace: per-state event counts and total busy time.
type Stats struct {
	Events        int
	Window        float64
	PerState      []StateStat
	BusyTime      float64 // sum of event durations across all resources
	MeanEventSpan float64
}

// StateStat aggregates one state's occurrences.
type StateStat struct {
	Name     string
	Count    int
	Duration float64
}

// ComputeStats scans the trace once and returns summary statistics.
func (tr *Trace) ComputeStats() Stats {
	st := Stats{Events: len(tr.Events), PerState: make([]StateStat, len(tr.States))}
	for i, name := range tr.States {
		st.PerState[i].Name = name
	}
	ws, we := tr.Window()
	st.Window = we - ws
	for _, e := range tr.Events {
		d := e.Duration()
		st.BusyTime += d
		if int(e.State) < len(st.PerState) {
			st.PerState[e.State].Count++
			st.PerState[e.State].Duration += d
		}
	}
	if st.Events > 0 {
		st.MeanEventSpan = st.BusyTime / float64(st.Events)
	}
	return st
}

// Clone returns a deep copy of the trace.
func (tr *Trace) Clone() *Trace {
	cp := &Trace{
		Resources: append([]string(nil), tr.Resources...),
		States:    append([]string(nil), tr.States...),
		Events:    append([]Event(nil), tr.Events...),
		Start:     tr.Start,
		End:       tr.End,
	}
	return cp
}

// Slice returns a new trace containing only events overlapping [from, to),
// with events clipped to that window. Resource and state tables are shared
// structure (copied slices of the same strings).
func (tr *Trace) Slice(from, to float64) *Trace {
	out := &Trace{
		Resources: append([]string(nil), tr.Resources...),
		States:    append([]string(nil), tr.States...),
		Start:     from,
		End:       to,
	}
	for _, e := range tr.Events {
		if e.End <= from || e.Start >= to {
			continue
		}
		if e.Start < from {
			e.Start = from
		}
		if e.End > to {
			e.End = to
		}
		out.Events = append(out.Events, e)
	}
	return out
}
