package failpoint

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestDisabledIsNoop(t *testing.T) {
	DisableAll()
	if err := Inject("never/enabled"); err != nil {
		t.Fatalf("disabled failpoint injected: %v", err)
	}
	if got := Active(); len(got) != 0 {
		t.Fatalf("empty registry lists %v", got)
	}
}

func TestCountSequence(t *testing.T) {
	defer DisableAll()
	if err := Enable("seq", "2*off->2*error(boom)->1*off"); err != nil {
		t.Fatal(err)
	}
	want := []bool{false, false, true, true, false, false, false}
	for i, wantErr := range want {
		err := Inject("seq")
		if (err != nil) != wantErr {
			t.Fatalf("hit %d: err=%v, want error=%v", i, err, wantErr)
		}
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: error %v does not wrap ErrInjected", i, err)
		}
	}
	if got := Hits("seq"); got != int64(len(want)) {
		t.Fatalf("hits = %d, want %d", got, len(want))
	}
}

func TestTerminalTermKeepsFiring(t *testing.T) {
	defer DisableAll()
	if err := Enable("sticky", "1*off->error(always)"); err != nil {
		t.Fatal(err)
	}
	if err := Inject("sticky"); err != nil {
		t.Fatalf("first hit should pass: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := Inject("sticky"); err == nil {
			t.Fatalf("terminal error term stopped firing at hit %d", i)
		}
	}
}

func TestProbabilityDeterministic(t *testing.T) {
	defer DisableAll()
	run := func() []bool {
		if err := EnableSeeded("prob", "50%error(flaky)", 42); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			out[i] = Inject("prob") != nil
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs across identically-seeded runs", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("50%% spec fired %d/%d times — not probabilistic", fired, len(a))
	}
}

func TestDelayHonorsContext(t *testing.T) {
	defer DisableAll()
	if err := Enable("slow", "delay(30s)"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- InjectContext(ctx, "slow") }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("interrupted delay returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled delay did not wake")
	}
}

func TestDelayActuallyDelays(t *testing.T) {
	defer DisableAll()
	if err := Enable("tick", "delay(20ms)"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject("tick"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("delay(20ms) returned after %v", d)
	}
}

func TestPanicAction(t *testing.T) {
	defer DisableAll()
	if err := Enable("die", "panic(chaos)"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		pv, ok := r.(PanicValue)
		if !ok {
			t.Fatalf("panic value %v (%T), want PanicValue", r, r)
		}
		if pv.Name != "die" || pv.Msg != "chaos" {
			t.Fatalf("panic value %+v", pv)
		}
	}()
	Inject("die")
	t.Fatal("panic action did not panic")
}

func TestEnableFunc(t *testing.T) {
	defer DisableAll()
	calls := 0
	EnableFunc("hook", func(ctx context.Context) error {
		calls++
		return ctx.Err()
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := InjectContext(ctx, "hook"); !errors.Is(err, context.Canceled) {
		t.Fatalf("func hook did not see the site context: %v", err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times", calls)
	}
}

func TestBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"",
		"explode",
		"error(boom)->1*off", // countless term not last
		"0*error(x)",
		"-3*off",
		"150%error(x)",
		"delay(notaduration)",
		"error(unclosed",
	} {
		if err := Enable("bad", spec); err == nil {
			Disable("bad")
			t.Errorf("spec %q accepted", spec)
		}
	}
	if len(Active()) != 0 {
		t.Fatalf("failed enables left registry state: %v", Active())
	}
}

func TestActiveListing(t *testing.T) {
	defer DisableAll()
	Enable("b/two", "error(x)")
	Enable("a/one", "2*off->delay(1ms)")
	got := Active()
	if len(got) != 2 || got[0].Name != "a/one" || got[1].Name != "b/two" {
		t.Fatalf("Active() = %+v", got)
	}
	Disable("a/one")
	if got := Active(); len(got) != 1 || got[0].Name != "b/two" {
		t.Fatalf("after disable: %+v", got)
	}
}
