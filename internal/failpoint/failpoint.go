package failpoint

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is wrapped by every error a failpoint injects, so callers
// and tests can classify a failure as injected chaos rather than a real
// fault: errors.Is(err, failpoint.ErrInjected).
var ErrInjected = errors.New("failpoint: injected fault")

// PanicValue is the value an enabled panic(msg) term panics with;
// recovery sites can detect injected panics with a type assertion.
type PanicValue struct {
	Name string // the failpoint that fired
	Msg  string
}

func (p PanicValue) String() string {
	return fmt.Sprintf("failpoint %s: %s", p.Name, p.Msg)
}

// injectedError carries the failpoint name and message and matches
// ErrInjected under errors.Is.
type injectedError struct {
	name string
	msg  string
}

func (e *injectedError) Error() string {
	return fmt.Sprintf("failpoint %s: %s", e.name, e.msg)
}

func (e *injectedError) Is(target error) bool { return target == ErrInjected }

// actionKind enumerates the fault a term injects.
type actionKind int

const (
	actOff actionKind = iota
	actError
	actDelay
	actPanic
)

// term is one stage of a failpoint's firing sequence.
type term struct {
	kind  actionKind
	msg   string        // error/panic payload
	delay time.Duration // delay payload
	count int           // remaining firings; < 0 = unlimited (terminal)
	prob  float64       // fire probability; 1 = always
}

// point is one enabled failpoint.
type point struct {
	name  string
	spec  string
	terms []term
	cur   int
	fn    func(context.Context) error // EnableFunc override
	rng   *rand.Rand
	hits  int64 // total Inject evaluations while enabled
}

var (
	// enabledCount gates the Inject fast path: zero means the registry is
	// empty and Inject returns before taking any lock.
	enabledCount atomic.Int32

	mu     sync.Mutex
	points = make(map[string]*point)
)

// Enable arms the named failpoint with a spec (see the package comment
// for the grammar), replacing any previous arming. The spec is validated
// up front; a bad spec leaves the failpoint untouched.
func Enable(name, spec string) error {
	return enableSeeded(name, spec, 0, false)
}

// EnableSeeded is Enable with an explicit PRNG seed for probability
// terms, for tests that need distinct replayable chaos schedules from one
// spec.
func EnableSeeded(name, spec string, seed int64) error {
	return enableSeeded(name, spec, seed, true)
}

func enableSeeded(name, spec string, seed int64, haveSeed bool) error {
	if name == "" {
		return fmt.Errorf("failpoint: empty name")
	}
	terms, err := parseSpec(spec)
	if err != nil {
		return fmt.Errorf("failpoint %s: %w", name, err)
	}
	if !haveSeed {
		h := fnv.New64a()
		h.Write([]byte(name))
		seed = int64(h.Sum64())
	}
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; !ok {
		enabledCount.Add(1)
	}
	points[name] = &point{
		name:  name,
		spec:  spec,
		terms: terms,
		rng:   rand.New(rand.NewSource(seed)),
	}
	return nil
}

// EnableFunc arms the named failpoint with an arbitrary callback: every
// Inject at the site calls fn with the caller's context and returns its
// error. This is the deterministic-test hook — a callback can block until
// released, observe the site's context, or coordinate with the test body —
// replacing per-site ad-hoc test hooks.
func EnableFunc(name string, fn func(ctx context.Context) error) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; !ok {
		enabledCount.Add(1)
	}
	points[name] = &point{name: name, spec: "func", fn: fn}
}

// Disable disarms the named failpoint; a disabled site costs one atomic
// load again. Disabling an already-disabled name is a no-op.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		enabledCount.Add(-1)
	}
}

// DisableAll disarms every failpoint (test cleanup).
func DisableAll() {
	mu.Lock()
	defer mu.Unlock()
	enabledCount.Add(-int32(len(points)))
	points = make(map[string]*point)
}

// Status describes one enabled failpoint for listings.
type Status struct {
	Name string `json:"name"`
	Spec string `json:"spec"`
	Hits int64  `json:"hits"`
}

// Active lists the enabled failpoints sorted by name. Empty in any
// production process — the serving smoke gates on it.
func Active() []Status {
	mu.Lock()
	defer mu.Unlock()
	out := make([]Status, 0, len(points))
	for _, p := range points {
		out = append(out, Status{Name: p.name, Spec: p.spec, Hits: p.hits})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Hits returns how many times the named failpoint has been evaluated
// since it was enabled (0 when disabled).
func Hits(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.hits
	}
	return 0
}

// Inject evaluates the named failpoint: a no-op (one atomic load) unless
// the registry armed the name. Delay terms sleep uninterruptibly here;
// sites with a context should prefer InjectContext.
func Inject(name string) error {
	return InjectContext(context.Background(), name)
}

// InjectContext evaluates the named failpoint with the site's context:
// injected delays wake early (returning ctx.Err()) when the context dies,
// so a chaos stall never outlives the request it is stalling.
func InjectContext(ctx context.Context, name string) error {
	if enabledCount.Load() == 0 {
		return nil
	}
	mu.Lock()
	p, ok := points[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	p.hits++
	if p.fn != nil {
		fn := p.fn
		mu.Unlock()
		return fn(ctx)
	}
	kind, msg, delay, fire := p.nextLocked()
	mu.Unlock()
	if !fire {
		return nil
	}
	switch kind {
	case actError:
		return &injectedError{name: name, msg: msg}
	case actDelay:
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	case actPanic:
		panic(PanicValue{Name: name, Msg: msg})
	}
	return nil
}

// nextLocked advances the point's term sequence by one hit and reports
// what (if anything) to inject.
func (p *point) nextLocked() (kind actionKind, msg string, delay time.Duration, fire bool) {
	for p.cur < len(p.terms) {
		t := &p.terms[p.cur]
		if t.count == 0 {
			p.cur++
			continue
		}
		if t.count > 0 {
			t.count--
		}
		if t.prob < 1 && p.rng.Float64() >= t.prob {
			return 0, "", 0, false
		}
		if t.kind == actOff {
			return 0, "", 0, false
		}
		return t.kind, t.msg, t.delay, true
	}
	return 0, "", 0, false
}

// parseSpec compiles "3*off->1*error(boom)" into terms.
func parseSpec(spec string) ([]term, error) {
	parts := strings.Split(spec, "->")
	terms := make([]term, 0, len(parts))
	for i, part := range parts {
		t, err := parseTerm(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if t.count < 0 && i != len(parts)-1 {
			return nil, fmt.Errorf("term %q has no count and would never advance; only the last term may omit N*", part)
		}
		terms = append(terms, t)
	}
	return terms, nil
}

func parseTerm(s string) (term, error) {
	t := term{count: -1, prob: 1}
	if s == "" {
		return t, fmt.Errorf("empty term")
	}
	if i := strings.Index(s, "*"); i >= 0 && !strings.Contains(s[:i], "(") {
		n, err := strconv.Atoi(strings.TrimSpace(s[:i]))
		if err != nil || n <= 0 {
			return t, fmt.Errorf("bad count in term %q", s)
		}
		t.count = n
		s = strings.TrimSpace(s[i+1:])
	} else if i := strings.Index(s, "%"); i >= 0 && !strings.Contains(s[:i], "(") {
		pct, err := strconv.ParseFloat(strings.TrimSpace(s[:i]), 64)
		if err != nil || pct < 0 || pct > 100 {
			return t, fmt.Errorf("bad probability in term %q", s)
		}
		t.prob = pct / 100
		s = strings.TrimSpace(s[i+1:])
	}
	action, arg := s, ""
	if i := strings.Index(s, "("); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return t, fmt.Errorf("unclosed argument in term %q", s)
		}
		action, arg = s[:i], s[i+1:len(s)-1]
	}
	switch action {
	case "off":
		t.kind = actOff
	case "error":
		t.kind = actError
		t.msg = arg
		if t.msg == "" {
			t.msg = "injected error"
		}
	case "delay":
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return t, fmt.Errorf("bad delay duration %q", arg)
		}
		t.kind = actDelay
		t.delay = d
	case "panic":
		t.kind = actPanic
		t.msg = arg
		if t.msg == "" {
			t.msg = "injected panic"
		}
	default:
		return t, fmt.Errorf("unknown action %q (want off, error, delay, or panic)", action)
	}
	return t, nil
}
