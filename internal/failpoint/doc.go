// Package failpoint provides named, deterministically-triggerable fault
// injection points for chaos testing the serving pipeline. A failpoint is
// a call site — failpoint.Inject("server/flight") — that does nothing in
// production (one atomic load when the registry is empty) and, when a
// test or an operator enables it, injects a fault: an error, a delay, or
// a panic, fired by count, probability, or a sequence of both.
//
// Layering: failpoint sits below everything that injects through it
// (traceio, core, server) and imports nothing of the engine — it is pure
// registry + spec interpreter, so any layer can name a site without an
// import cycle.
//
// Specs are sequences of terms separated by "->"; each hit of the
// failpoint consumes the current term:
//
//	3*off->1*error(boom)     pass three times, then fail once, then off
//	2*delay(10ms)->panic(x)  two 10 ms stalls, then panic on every hit
//	25%error(flaky)          fail one hit in four (deterministic PRNG)
//
// Actions: off (no fault), error(msg) (return an error wrapping
// ErrInjected), delay(dur) (sleep, cancellable through InjectContext),
// panic(msg) (panic with a PanicValue, so recovery sites can tell an
// injected panic from a real one). A term with a count N* fires N hits
// and then advances to the next term; a term without a count (including
// P% probability terms) is terminal and keeps firing forever, so only the
// last term may omit the count. A failpoint whose terms are exhausted
// stops injecting but stays listed in Active until disabled.
//
// Probability terms draw from a PRNG seeded from the failpoint's name (or
// an explicit Seed), so a chaos run replays identically: the k-th hit of
// a given failpoint fires or not independent of scheduling.
//
// Production builds are expected to run with an empty registry: nothing
// in this package enables a failpoint on its own, and the serving smoke
// gates releases on Active() being empty (via /debug/failpoints).
package failpoint
