package spatial

import (
	"math"
	"math/rand"
	"testing"

	"ocelotl/internal/exhaustive"
	"ocelotl/internal/hierarchy"
	"ocelotl/internal/measures"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/timeslice"
)

func randomModel(t *testing.T, seed int64, paths []string, T int) *microscopic.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	h, err := hierarchy.FromPaths(paths)
	if err != nil {
		t.Fatal(err)
	}
	sl, _ := timeslice.New(0, float64(T), T)
	m := microscopic.NewEmpty(h, sl, []string{"u", "v"})
	for s := 0; s < h.NumLeaves(); s++ {
		for ti := 0; ti < T; ti++ {
			a := rng.Float64()
			m.AddD(0, s, ti, a)
			m.AddD(1, s, ti, rng.Float64()*(1-a))
		}
	}
	return m
}

var paths = []string{"A/m0/a0", "A/m0/a1", "A/m1/a2", "B/m2/b0", "B/m2/b1"}

func TestOptimalAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		m := randomModel(t, seed, paths, 4)
		agg := New(m)
		for _, p := range []float64{0, 0.2, 0.5, 0.8, 1} {
			pt, err := agg.Run(p)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := exhaustive.BestSpatial(m.H.Root, func(n *hierarchy.Node) float64 {
				g, l := agg.NodeGainLoss(n)
				return measures.PIC(p, g, l)
			})
			if math.Abs(pt.PIC-want) > 1e-9*(1+math.Abs(want)) {
				t.Errorf("seed %d p=%v: DFS %.12f, brute force %.12f", seed, p, pt.PIC, want)
			}
		}
	}
}

func TestPartitionValidAndFullWindow(t *testing.T) {
	m := randomModel(t, 1, paths, 3)
	agg := New(m)
	pt, err := agg.Run(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.Validate(m.H, m.NumSlices()); err != nil {
		t.Errorf("invalid partition: %v", err)
	}
	for _, a := range pt.Areas {
		if a.I != 0 || a.J != m.NumSlices()-1 {
			t.Errorf("spatial-only area %v does not span the window", a)
		}
	}
}

func TestHomogeneousResourcesAggregate(t *testing.T) {
	h, _ := hierarchy.FromPaths(paths)
	sl, _ := timeslice.New(0, 4, 4)
	m := microscopic.NewEmpty(h, sl, []string{"u"})
	for s := 0; s < h.NumLeaves(); s++ {
		for ti := 0; ti < 4; ti++ {
			m.AddD(0, s, ti, 0.4)
		}
	}
	pt, err := New(m).Run(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Areas) != 1 || pt.Areas[0].Node != m.H.Root {
		t.Errorf("homogeneous resources produced %d areas", len(pt.Areas))
	}
}

func TestHeterogeneousClustersSeparate(t *testing.T) {
	// Cluster A busy, cluster B idle: at moderate p the two clusters
	// should not merge into the root.
	h, _ := hierarchy.FromPaths([]string{"A/a0", "A/a1", "B/b0", "B/b1"})
	sl, _ := timeslice.New(0, 4, 4)
	m := microscopic.NewEmpty(h, sl, []string{"u"})
	for s := 0; s < 2; s++ {
		for ti := 0; ti < 4; ti++ {
			m.AddD(0, s, ti, 0.9)
		}
	}
	for s := 2; s < 4; s++ {
		for ti := 0; ti < 4; ti++ {
			m.AddD(0, s, ti, 0.05)
		}
	}
	pt, err := New(m).Run(0.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range pt.Areas {
		if a.Node == m.H.Root {
			t.Errorf("heterogeneous clusters merged at p=0.3: %v", pt.Areas)
		}
	}
	// But each homogeneous cluster should have merged internally.
	if len(pt.Areas) != 2 {
		t.Errorf("got %d areas, want the 2 clusters: %v", len(pt.Areas), pt.Areas)
	}
}

func TestNodesHelper(t *testing.T) {
	m := randomModel(t, 5, paths, 3)
	agg := New(m)
	nodes, err := agg.Nodes(0.5)
	if err != nil {
		t.Fatal(err)
	}
	pt, _ := agg.Run(0.5)
	if len(nodes) != len(pt.Areas) {
		t.Errorf("Nodes returned %d, partition has %d areas", len(nodes), len(pt.Areas))
	}
}

func TestRejectsBadP(t *testing.T) {
	m := randomModel(t, 9, paths, 2)
	agg := New(m)
	for _, p := range []float64{-1, 2, math.NaN()} {
		if _, err := agg.Run(p); err == nil {
			t.Errorf("Run(%v) accepted", p)
		}
	}
}

func TestNodeGainLossMatchesExhaustive(t *testing.T) {
	m := randomModel(t, 13, paths, 4)
	agg := New(m)
	T := m.NumSlices()
	for _, n := range m.H.Nodes {
		g1, l1 := agg.NodeGainLoss(n)
		// The time-integrated dataset is the same as evaluating the
		// (node, full-interval) area on a single-slice re-binned model;
		// rebuild it from resource profiles from first principles.
		var g2, l2 float64
		for x := 0; x < m.NumStates(); x++ {
			var sums measures.AreaSums
			sums.Size = n.Size()
			sums.Duration = float64(T) // d(t)=1 per slice
			for s := n.Lo; s < n.Hi; s++ {
				prof := m.ResourceProfile(s)
				sums.SumD += prof[x] * float64(T)
				sums.SumRho += prof[x]
				sums.SumRhoLogRho += measures.PLogP(prof[x])
			}
			g2 += sums.Gain()
			l2 += sums.Loss()
		}
		if math.Abs(g1-g2) > 1e-9 || math.Abs(l1-l2) > 1e-9 {
			t.Errorf("node %q: (g=%g,l=%g) vs first-principles (g=%g,l=%g)", n.Path, g1, l1, g2, l2)
		}
	}
}
