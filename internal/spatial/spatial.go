// Package spatial implements the spatial-only aggregation baseline
// (paper §III.D, the Viva technique [13]): the optimal hierarchy-consistent
// partition of the time-integrated trace S×{T}, computed by a depth-first
// search of the hierarchy in O(|S|) pIC evaluations.
//
// Each microscopic individual is one resource with its time-integrated
// state proportions ρ_x({s}, T); each candidate aggregate is a hierarchy
// node. On every branch the algorithm keeps the node if its own pIC beats
// the summed optimal pIC of its children (ties favor aggregation).
package spatial

import (
	"fmt"
	"math"

	"ocelotl/internal/hierarchy"
	"ocelotl/internal/measures"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/partition"
)

// Aggregator precomputes per-node sums for the time-integrated trace.
type Aggregator struct {
	Model *microscopic.Model
	X     int

	// Per node (indexed by hierarchy node ID) and state:
	sumD   [][]float64 // Σ_{s∈S_k} Σ_t d_x(s,t)
	sumRho [][]float64 // Σ_{s∈S_k} ρ_x({s},T)
	sumRL  [][]float64 // Σ_{s∈S_k} ρ·log₂ρ
	gain   []float64   // per-node gain, summed over states
	loss   []float64   // per-node loss
	dur    float64     // Σ_t d(t)
}

// New builds the per-node sums bottom-up in O(|X|·|H(S)|) after an
// O(|X|·|S|·|T|) integration pass.
func New(m *microscopic.Model) *Aggregator {
	a := &Aggregator{
		Model:  m,
		X:      m.NumStates(),
		sumD:   make([][]float64, m.H.NumNodes()),
		sumRho: make([][]float64, m.H.NumNodes()),
		sumRL:  make([][]float64, m.H.NumNodes()),
		gain:   make([]float64, m.H.NumNodes()),
		loss:   make([]float64, m.H.NumNodes()),
	}
	for _, d := range m.SliceDur {
		a.dur += d
	}
	a.build(m.H.Root)
	return a
}

func (a *Aggregator) build(n *hierarchy.Node) {
	id := n.ID
	a.sumD[id] = make([]float64, a.X)
	a.sumRho[id] = make([]float64, a.X)
	a.sumRL[id] = make([]float64, a.X)
	if n.IsLeaf() {
		prof := a.Model.ResourceProfile(n.Lo)
		T := a.Model.NumSlices()
		for x := 0; x < a.X; x++ {
			var d float64
			row := a.Model.StateRow(x)
			for t := 0; t < T; t++ {
				d += row[n.Lo*T+t]
			}
			a.sumD[id][x] = d
			a.sumRho[id][x] = prof[x]
			a.sumRL[id][x] = measures.PLogP(prof[x])
		}
	} else {
		for _, c := range n.Children {
			a.build(c)
			for x := 0; x < a.X; x++ {
				a.sumD[id][x] += a.sumD[c.ID][x]
				a.sumRho[id][x] += a.sumRho[c.ID][x]
				a.sumRL[id][x] += a.sumRL[c.ID][x]
			}
		}
	}
	for x := 0; x < a.X; x++ {
		sums := measures.AreaSums{
			SumD:         a.sumD[id][x],
			SumRho:       a.sumRho[id][x],
			SumRhoLogRho: a.sumRL[id][x],
			Size:         n.Size(),
			Duration:     a.dur,
		}
		a.gain[id] += sums.Gain()
		a.loss[id] += sums.Loss()
	}
}

// NodeGainLoss returns the time-integrated gain and loss of aggregating
// node n (relative to its per-resource microscopic description).
func (a *Aggregator) NodeGainLoss(n *hierarchy.Node) (gain, loss float64) {
	return a.gain[n.ID], a.loss[n.ID]
}

// Run returns the optimal hierarchy-consistent partition at ratio p. The
// partition's areas all span the full time window [0, |T|-1].
func (a *Aggregator) Run(p float64) (*partition.Partition, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("spatial: p = %v out of [0,1]", p)
	}
	pt := &partition.Partition{P: p}
	a.optimize(a.Model.H.Root, p, pt)
	pt.PIC = measures.PIC(p, pt.Gain, pt.Loss)
	pt.Sort()
	return pt, nil
}

// optimize returns the best pIC achievable for the subtree of n, appending
// the chosen aggregates to pt. Ties keep the aggregate (no cut), matching
// Algorithm 1's strict comparison.
func (a *Aggregator) optimize(n *hierarchy.Node, p float64, pt *partition.Partition) float64 {
	own := measures.PIC(p, a.gain[n.ID], a.loss[n.ID])
	if n.IsLeaf() {
		pt.Areas = append(pt.Areas, a.fullArea(n))
		pt.Gain += a.gain[n.ID]
		pt.Loss += a.loss[n.ID]
		return own
	}
	var sub partition.Partition
	var childSum float64
	for _, c := range n.Children {
		childSum += a.optimize(c, p, &sub)
	}
	if measures.Improves(childSum, own) {
		pt.Areas = append(pt.Areas, sub.Areas...)
		pt.Gain += sub.Gain
		pt.Loss += sub.Loss
		return childSum
	}
	pt.Areas = append(pt.Areas, a.fullArea(n))
	pt.Gain += a.gain[n.ID]
	pt.Loss += a.loss[n.ID]
	return own
}

func (a *Aggregator) fullArea(n *hierarchy.Node) partition.Area {
	return partition.Area{Node: n, I: 0, J: a.Model.NumSlices() - 1}
}

// Nodes returns the spatial parts (hierarchy nodes) of the optimal
// partition at p, for callers that only need the spatial decomposition.
func (a *Aggregator) Nodes(p float64) ([]*hierarchy.Node, error) {
	pt, err := a.Run(p)
	if err != nil {
		return nil, err
	}
	out := make([]*hierarchy.Node, len(pt.Areas))
	for i, ar := range pt.Areas {
		out[i] = ar.Node
	}
	return out, nil
}
